//! HFP and mHFP — Hierarchical Fair Packing and its multi-GPU extension
//! (Algorithm 4, §IV-C).
//!
//! HFP gathers tasks that share many inputs into *packages* whose combined
//! input footprint fits in GPU memory, so that once a package's inputs are
//! loaded all its tasks run without further transfers. Packages are then
//! merged again by affinity (ignoring the memory bound) until one list per
//! GPU remains; `L_avg` rebalancing moves tail tasks from the heaviest to
//! the lightest package; Ready + stealing run at runtime.
//!
//! The paper's packing is the quadratic greedy procedure: each merge round
//! scans every package and recomputes `shared_bytes` against every other —
//! its large scheduling time on big working sets is itself one of the
//! published findings (Figures 3 and 5). That reference implementation is
//! kept compilable behind the `naive` cargo feature and runtime-selected
//! with [`PackConfig::with_naive`] (the figure harness exposes it as
//! `--paper-timing`), so the published slowness stays reproducible.
//!
//! The default packing produces **byte-identical package lists** from
//! indexed state instead of scans (see `tests/differential_naive.rs` for
//! the proptest proof):
//!
//! * a data → package inverted index ([`PackState::owners`]) so the
//!   best-affinity search only visits packages sharing at least one input
//!   with the selected package, via shared-byte accumulators instead of
//!   pairwise merge-joins;
//! * a size-bucket queue ([`SizeQueue`]) serving the "smallest (unfrozen)
//!   package, lowest slot" selection without a full scan;
//! * `input_bytes` of a merge computed as `p + q − shared` instead of
//!   re-summing `data_size` over the whole union.

use crate::ready::DEFAULT_READY_WINDOW;
use crate::stealing::StealingQueues;
use memsched_model::{DataId, GpuId, TaskId, TaskSet};
use memsched_platform::{PlatformSpec, Probe, RuntimeView, Scheduler};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A package's sorted input-id union. Singleton packages — every package
/// at the start of packing, i.e. O(n) of them — borrow their task's row
/// of the [`TaskSet`] CSR input slab instead of cloning it; only merged
/// packages own a materialized union.
#[derive(Debug, Default)]
enum InputList {
    /// The input row of a single task, resolved through the slab.
    Task(TaskId),
    /// A materialized sorted union (post-merge).
    Owned(Vec<u32>),
    /// Placeholder while a union is being built (`mem::take`).
    #[default]
    Empty,
}

impl InputList {
    #[inline]
    fn as_slice<'a>(&'a self, ts: &'a TaskSet) -> &'a [u32] {
        match self {
            InputList::Task(t) => ts.inputs(*t),
            InputList::Owned(v) => v,
            InputList::Empty => &[],
        }
    }

    /// Recover the owned buffer, if any, for recycling.
    #[inline]
    fn into_buffer(self) -> Option<Vec<u32>> {
        match self {
            InputList::Owned(v) => Some(v),
            _ => None,
        }
    }
}

/// One package: an ordered task list plus its input footprint.
#[derive(Debug)]
struct Package {
    tasks: Vec<TaskId>,
    /// Sorted union of input data ids (slab-backed for singletons).
    inputs: InputList,
    /// Total input bytes.
    input_bytes: u64,
    /// Total flops (the "load" of Algorithm 4).
    load: f64,
    /// Phase-1 freeze flag: no memory-respecting merge exists.
    frozen: bool,
}

impl Package {
    fn of_task(ts: &TaskSet, t: TaskId) -> Self {
        Self {
            tasks: vec![t],
            inputs: InputList::Task(t),
            input_bytes: ts.task_footprint(t),
            load: ts.flops(t),
            frozen: false,
        }
    }
}

/// Bytes of shared inputs between two sorted input lists.
#[cfg(any(feature = "naive", test))]
fn shared_bytes(ts: &TaskSet, a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut s) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                s += ts.data_size(DataId(a[i]));
                i += 1;
                j += 1;
            }
        }
    }
    s
}

/// Sorted union of two sorted id lists.
#[cfg(any(feature = "naive", test))]
fn union_inputs(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Configuration of [`pack_with`].
#[derive(Clone, Debug)]
pub struct PackConfig {
    /// Phase-1 memory bound in bytes (per-GPU capacity).
    pub memory: u64,
    /// Number of task lists to produce (one per GPU).
    pub k: usize,
    /// Run the original quadratic scans instead of the indexed fast path.
    /// Decisions are identical either way; only the wall time differs.
    #[cfg(feature = "naive")]
    naive: bool,
}

impl PackConfig {
    /// Fast indexed packing with the given memory bound and list count.
    pub fn new(memory: u64, k: usize) -> Self {
        Self {
            memory,
            k,
            #[cfg(feature = "naive")]
            naive: false,
        }
    }

    /// Select the original full-scan packing (the paper's measured
    /// implementation). The produced lists are byte-identical to the
    /// indexed ones; only `prepare` wall time changes.
    #[cfg(feature = "naive")]
    pub fn with_naive(mut self) -> Self {
        self.naive = true;
        self
    }
}

/// Run the two HFP packing phases plus the `L_avg` balancing, returning
/// `k` ordered task lists.
pub fn pack(ts: &TaskSet, memory: u64, k: usize) -> Vec<Vec<TaskId>> {
    pack_with(ts, &PackConfig::new(memory, k))
}

/// As [`pack`], with an explicit [`PackConfig`] (implementation select).
pub fn pack_with(ts: &TaskSet, config: &PackConfig) -> Vec<Vec<TaskId>> {
    #[cfg(feature = "naive")]
    if config.naive {
        return pack_naive(ts, config.memory, config.k);
    }
    pack_indexed(ts, config.memory, config.k)
}

/// As [`pack_with`], restricted to the given `tasks` — the online mode
/// re-packs the visible horizon with this. Passing every task in id order
/// reproduces [`pack_with`] exactly (the packing only ever looks at the
/// tasks it is given), which is what makes a t = 0 stream run
/// decision-equivalent to batch. Always uses the indexed fast path: the
/// `naive` timing mode exists only to reproduce the paper's batch
/// `prepare` wall time.
pub fn pack_subset(ts: &TaskSet, config: &PackConfig, tasks: &[TaskId]) -> Vec<Vec<TaskId>> {
    let k = config.k.max(1);
    let mut state = PackState::of_tasks(ts, tasks.iter().copied());
    state.phase1(config.memory, k);
    state.phase2(k);
    let mut packages = state.packages;
    balance(ts, &mut packages, k);
    finish(packages, k)
}

// ---------------------------------------------------------------------------
// Indexed fast path
// ---------------------------------------------------------------------------

/// Lazy-deletion min-heap over `(size, slot)` keys serving the naive
/// `(tasks.len(), index)` min-scan — "smallest package, lowest slot" —
/// without rescanning. Entries are never removed eagerly: a key is *valid*
/// iff the package currently occupying `slot` has exactly `size` tasks
/// (and is eligible for the phase), which fully describes the occupant
/// regardless of which package originally pushed the key. A new key is
/// pushed whenever a package's size or slot changes, so every eligible
/// package always has its current key queued; stale keys are popped on
/// sight during peek. All operations are allocation-free after warm-up.
#[derive(Debug, Default)]
struct SizeQueue {
    heap: BinaryHeap<Reverse<(u32, u32)>>,
}

impl SizeQueue {
    fn push(&mut self, size: usize, slot: u32) {
        self.heap.push(Reverse((size as u32, slot)));
    }
}

/// The indexed packing state. Packages live in `packages` with exactly
/// the naive algorithm's slot semantics (`swap_remove` on merge), so slot
/// order — which the naive tie-breaks observe — evolves identically; on
/// top of that, every package carries a stable id (its initial slot) that
/// the inverted index and the affinity accumulator are keyed by, so
/// `swap_remove` renames cost O(1) instead of O(degree).
struct PackState<'a> {
    ts: &'a TaskSet,
    packages: Vec<Package>,
    /// Stable id of the package occupying each slot (parallel to
    /// `packages`, maintained with the same `swap_remove`s).
    id_of_slot: Vec<u32>,
    /// Current slot of each stable id; `u32::MAX` once merged away.
    slot_of_id: Vec<u32>,
    /// Inverted index: data id → stable ids of the packages whose input
    /// set contains it.
    owners: Vec<Vec<u32>>,
    /// Shared-byte accumulator, keyed by stable id, describing the package
    /// `acc_for`: `acc[q] = shared_bytes(acc_for, q)` for every alive
    /// `q ≠ acc_for` (entries for `acc_for` itself and for dead ids may
    /// hold garbage — readers filter by slot). Non-zero entries are always
    /// recorded in `acc_candidates`, which doubles as the reset list: a
    /// rebuild zeroes exactly the previously-touched entries instead of
    /// keeping a generation stamp next to every value. Rebuilt from the
    /// index whenever the described package changed (a merge invalidates
    /// it).
    acc: Vec<u64>,
    /// Stable ids with possibly non-zero `acc` (the packages sharing ≥ 1
    /// input with `acc_for`; may contain ids that died in later merges —
    /// filtered on read).
    acc_candidates: Vec<u32>,
    acc_for: Option<u32>,
    /// Phase queue: unfrozen packages in phase 1, all packages in phase 2.
    queue: SizeQueue,
    queue_includes_frozen: bool,
    /// Reusable union buffer for `merge` (swapped with the merged
    /// package's input list, so steady-state merging never allocates).
    scratch: Vec<u32>,
}

impl<'a> PackState<'a> {
    fn new(ts: &'a TaskSet) -> Self {
        Self::of_tasks(ts, ts.tasks())
    }

    /// Packing state over an arbitrary task subset; slot order (and with
    /// it every tie-break) follows the iteration order.
    fn of_tasks(ts: &'a TaskSet, tasks: impl Iterator<Item = TaskId>) -> Self {
        let packages: Vec<Package> = tasks.map(|t| Package::of_task(ts, t)).collect();
        let n = packages.len();
        let mut owners: Vec<Vec<u32>> = (0..ts.num_data())
            .map(|d| Vec::with_capacity(ts.consumers(DataId(d as u32)).len()))
            .collect();
        let mut queue = SizeQueue {
            heap: BinaryHeap::with_capacity(4 * n + 4),
        };
        for (slot, p) in packages.iter().enumerate() {
            for &d in p.inputs.as_slice(ts) {
                owners[d as usize].push(slot as u32);
            }
            queue.push(p.tasks.len(), slot as u32);
        }
        Self {
            ts,
            packages,
            id_of_slot: (0..n as u32).collect(),
            slot_of_id: (0..n as u32).collect(),
            owners,
            acc: vec![0; n],
            acc_candidates: Vec::new(),
            acc_for: None,
            queue,
            queue_includes_frozen: false,
            scratch: Vec::new(),
        }
    }

    /// The smallest eligible `(size, slot)` — the naive min-scan's pick —
    /// discarding stale heap keys on the way down.
    fn peek_smallest(&mut self) -> Option<(usize, u32)> {
        while let Some(&Reverse((size, slot))) = self.queue.heap.peek() {
            if let Some(p) = self.packages.get(slot as usize) {
                if p.tasks.len() == size as usize && (self.queue_includes_frozen || !p.frozen) {
                    return Some((size as usize, slot));
                }
            }
            self.queue.heap.pop();
        }
        None
    }

    /// Make the accumulator describe package `p_id`: a no-op when it
    /// already does (consecutive rounds reselecting the same package keep
    /// their accumulator across merges), an index walk over `p`'s inputs
    /// otherwise.
    fn ensure_acc(&mut self, p_id: u32) {
        if self.acc_for == Some(p_id) {
            return;
        }
        // Zero exactly the entries the previous accumulator touched, so
        // `acc[x] != 0` implies `x` is a current candidate.
        for &c in &self.acc_candidates {
            self.acc[c as usize] = 0;
        }
        self.acc_candidates.clear();
        self.acc_for = Some(p_id);
        let p_slot = self.slot_of_id[p_id as usize] as usize;
        // Walk the inverted index: only packages sharing ≥ 1 input with
        // `p` are ever touched — the quadratic all-pairs scan is gone.
        // `p` itself accumulates too (cheaper than a branch per visit);
        // readers skip it by slot.
        let ts = self.ts;
        let inputs = std::mem::take(&mut self.packages[p_slot].inputs);
        for &d in inputs.as_slice(ts) {
            let size = ts.data_size(DataId(d));
            for &o in &self.owners[d as usize] {
                let a = &mut self.acc[o as usize];
                if *a == 0 {
                    self.acc_candidates.push(o);
                }
                *a += size;
            }
        }
        self.packages[p_slot].inputs = inputs;
    }

    /// The merge partner the naive scan would pick for `p_id`:
    /// maximum shared bytes, ties to the lowest slot, restricted to
    /// memory-feasible unions when `memory` is given; when no candidate
    /// shares anything (or none feasibly), the lowest feasible slot with
    /// zero sharing — exactly the naive ascending scan's strict-`>`
    /// semantics. Returns the winning slot and its shared bytes.
    fn best_partner(&mut self, p_id: u32, memory: Option<u64>) -> Option<(u32, u64)> {
        self.ensure_acc(p_id);
        let p_slot = self.slot_of_id[p_id as usize];
        let p_bytes = self.packages[p_slot as usize].input_bytes;
        let mut best: Option<(u64, u32)> = None; // (shared, slot), shared > 0
        for i in 0..self.acc_candidates.len() {
            let o = self.acc_candidates[i];
            let slot = self.slot_of_id[o as usize];
            if slot == u32::MAX || slot == p_slot {
                continue; // merged away since recorded, or `p` itself
            }
            let shared = self.acc[o as usize];
            if shared == 0 {
                continue; // zero-size data only: competes in the fallback
            }
            if let Some(mem) = memory {
                let union_bytes = p_bytes + self.packages[slot as usize].input_bytes - shared;
                if union_bytes > mem {
                    continue;
                }
            }
            if best.is_none_or(|(bs, bslot)| shared > bs || (shared == bs && slot < bslot)) {
                best = Some((shared, slot));
            }
        }
        if let Some((shared, slot)) = best {
            return Some((slot, shared));
        }
        // Zero-shared fallback: the naive scan keeps the first (lowest
        // slot) feasible candidate when nothing shares. Sharing-but-
        // infeasible candidates were already rejected above and must be
        // skipped here too (`acc > 0` means exactly "shares bytes with
        // `p`" thanks to the candidates-list reset).
        for slot in 0..self.packages.len() as u32 {
            if slot == p_slot {
                continue;
            }
            let o = self.id_of_slot[slot as usize] as usize;
            if self.acc[o] > 0 {
                continue; // sharing candidate, already rejected as infeasible
            }
            if let Some(mem) = memory {
                if p_bytes + self.packages[slot as usize].input_bytes > mem {
                    continue;
                }
            }
            return Some((slot, 0));
        }
        None
    }

    /// Merge the package in slot `q_slot` into package `p_id`, mirroring
    /// the naive `swap_remove` slot evolution while updating the inverted
    /// index and the (still valid) accumulator incrementally. `shared` is
    /// the shared-byte value the partner search already computed.
    fn merge(&mut self, p_id: u32, q_slot: u32, shared: u64) {
        let q_id = self.id_of_slot[q_slot as usize];
        debug_assert_ne!(p_id, q_id);

        // Remove q from the slot arrays; the former last package (possibly
        // p itself) moves into q's slot, an O(1) rename thanks to the
        // stable-id indirection. Queue keys of q, of the moved package and
        // of p go stale by themselves (lazy heap); only the new keys are
        // pushed.
        let qpkg = self.packages.swap_remove(q_slot as usize);
        let dead = self.id_of_slot.swap_remove(q_slot as usize);
        debug_assert_eq!(dead, q_id);
        self.slot_of_id[q_id as usize] = u32::MAX;
        if (q_slot as usize) < self.packages.len() {
            let moved_id = self.id_of_slot[q_slot as usize];
            self.slot_of_id[moved_id as usize] = q_slot;
            if moved_id != p_id {
                self.queue
                    .push(self.packages[q_slot as usize].tasks.len(), q_slot);
            }
        }
        let p_slot = self.slot_of_id[p_id as usize] as usize;

        // Union the input lists while rewriting the inverted index: data
        // exclusive to q transfers ownership q → p; data in both just
        // loses q's ownership entry. The union is built in the reusable
        // scratch buffer and swapped in, so steady-state merging
        // allocates nothing.
        let ts = self.ts;
        let a_list = std::mem::take(&mut self.packages[p_slot].inputs);
        let b_list = qpkg.inputs;
        let a = a_list.as_slice(ts);
        let b = b_list.as_slice(ts);
        let mut union = std::mem::take(&mut self.scratch);
        union.clear();
        union.reserve(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let take_a = j == b.len() || (i < a.len() && a[i] <= b[j]);
            let take_b = i == a.len() || (j < b.len() && b[j] <= a[i]);
            if take_a && take_b {
                // In both: q's ownership entry disappears.
                let os = &mut self.owners[a[i] as usize];
                let pos = os.iter().position(|&o| o == q_id).expect("q owns its input");
                os.swap_remove(pos);
                union.push(a[i]);
                i += 1;
                j += 1;
            } else if take_a {
                union.push(a[i]);
                i += 1;
            } else {
                // Exclusive to q: rename the ownership entry to p.
                let d = b[j];
                let os = &mut self.owners[d as usize];
                let pos = os.iter().position(|&o| o == q_id).expect("q owns its input");
                os[pos] = p_id;
                union.push(d);
                j += 1;
            }
        }

        // Recycle whichever side owned a buffer (slab-backed singletons
        // own none); at most one survives as the next merge's scratch.
        if let Some(buf) = a_list.into_buffer().or_else(|| b_list.into_buffer()) {
            self.scratch = buf;
        }
        let ppkg = &mut self.packages[p_slot];
        ppkg.inputs = InputList::Owned(union);
        ppkg.tasks.extend_from_slice(&qpkg.tasks);
        ppkg.load += qpkg.load;
        // The union's byte total, without re-summing `data_size` over it.
        ppkg.input_bytes = ppkg.input_bytes + qpkg.input_bytes - shared;
        ppkg.frozen = false;
        self.queue.push(ppkg.tasks.len(), p_slot as u32);
        // The merge changed p's input set, so the accumulator no longer
        // describes it. Rebuilding on the (rare) rounds that reselect p is
        // cheaper than crediting every merge for a cache that phase 1
        // almost never hits — the merged package grows and stops being
        // the smallest.
        self.acc_for = None;
    }

    /// Phase 1: memory-bounded affinity merging. Repeatedly take the
    /// smallest unfrozen package and merge it with the package sharing the
    /// most input bytes, provided the union still fits in memory.
    fn phase1(&mut self, memory: u64, k: usize) {
        while self.packages.len() > k {
            let Some((_, p_slot)) = self.peek_smallest() else {
                break; // everything frozen
            };
            let p_id = self.id_of_slot[p_slot as usize];
            match self.best_partner(p_id, Some(memory)) {
                Some((q_slot, shared)) => self.merge(p_id, q_slot, shared),
                // Freezing invalidates the package's queue key in place.
                None => self.packages[p_slot as usize].frozen = true,
            }
        }
    }

    /// Phase 2: affinity merging without the memory bound, down to `k`
    /// packages, binding packages with high data affinity so they are
    /// scheduled consecutively.
    fn phase2(&mut self, k: usize) {
        // The selection now ranges over every package, frozen or not:
        // rebuild the queue accordingly.
        self.queue.heap.clear();
        self.queue_includes_frozen = true;
        for (slot, p) in self.packages.iter().enumerate() {
            self.queue.push(p.tasks.len(), slot as u32);
        }
        while self.packages.len() > k {
            let (_, p_slot) = self.peek_smallest().expect("non-empty");
            let p_id = self.id_of_slot[p_slot as usize];
            let (q_slot, shared) = self.best_partner(p_id, None).expect("at least two packages");
            self.merge(p_id, q_slot, shared);
        }
    }
}

fn pack_indexed(ts: &TaskSet, memory: u64, k: usize) -> Vec<Vec<TaskId>> {
    let k = k.max(1);
    let mut state = PackState::new(ts);
    state.phase1(memory, k);
    state.phase2(k);
    let mut packages = state.packages;
    balance(ts, &mut packages, k);
    finish(packages, k)
}

/// Load balancing (Algorithm 4): move tail tasks of the heaviest package
/// to the lightest until no package exceeds `L_avg` (within one task's
/// worth of load — exact equality is impossible with discrete tasks).
fn balance(ts: &TaskSet, packages: &mut [Package], k: usize) {
    if k <= 1 || packages.len() != k {
        return;
    }
    let total: f64 = packages.iter().map(|p| p.load).sum();
    let avg = total / k as f64;
    let max_task_load = ts.tasks().map(|t| ts.flops(t)).fold(0.0f64, f64::max);
    for _ in 0..ts.num_tasks() {
        let mx = packages
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.load.total_cmp(&b.1.load))
            .map(|(i, _)| i)
            .expect("non-empty");
        let mn = packages
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.load.total_cmp(&b.1.load))
            .map(|(i, _)| i)
            .expect("non-empty");
        if mx == mn || packages[mx].load <= avg + max_task_load {
            break;
        }
        let Some(t) = packages[mx].tasks.pop() else { break };
        packages[mx].load -= ts.flops(t);
        packages[mn].tasks.push(t);
        packages[mn].load += ts.flops(t);
    }
}

fn finish(packages: Vec<Package>, k: usize) -> Vec<Vec<TaskId>> {
    let mut lists: Vec<Vec<TaskId>> = packages.into_iter().map(|p| p.tasks).collect();
    lists.resize(k, Vec::new());
    lists
}

// ---------------------------------------------------------------------------
// Naive reference (the paper's measured quadratic procedure)
// ---------------------------------------------------------------------------

/// Merge package `q` into `p` (append task list, union inputs) and remove
/// `q` from the vector — including the original O(|union|) byte re-sum
/// whose cost is part of the published finding.
#[cfg(feature = "naive")]
fn merge_naive(ts: &TaskSet, packages: &mut Vec<Package>, p: usize, q: usize) {
    debug_assert_ne!(p, q);
    let qpkg = packages.swap_remove(q);
    // swap_remove may have moved the former last package into slot q.
    let p = if p == packages.len() { q } else { p };
    let union = union_inputs(packages[p].inputs.as_slice(ts), qpkg.inputs.as_slice(ts));
    let ppkg = &mut packages[p];
    ppkg.tasks.extend_from_slice(&qpkg.tasks);
    ppkg.load += qpkg.load;
    ppkg.input_bytes = union.iter().map(|&d| ts.data_size(DataId(d))).sum();
    ppkg.inputs = InputList::Owned(union);
    ppkg.frozen = false;
}

/// The original full-scan packing: O(n²·d) per-round scans, kept as the
/// decision-equivalence reference and for `--paper-timing` reproduction.
#[cfg(feature = "naive")]
fn pack_naive(ts: &TaskSet, memory: u64, k: usize) -> Vec<Vec<TaskId>> {
    let k = k.max(1);
    let mut packages: Vec<Package> = ts.tasks().map(|t| Package::of_task(ts, t)).collect();

    // Phase 1: memory-bounded affinity merging.
    while packages.len() > k {
        let Some(p_idx) = packages
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.frozen)
            .min_by_key(|(i, p)| (p.tasks.len(), *i))
            .map(|(i, _)| i)
        else {
            break; // everything frozen
        };
        let mut best: Option<(usize, u64)> = None;
        for (q_idx, q) in packages.iter().enumerate() {
            if q_idx == p_idx {
                continue;
            }
            let shared = shared_bytes(ts, packages[p_idx].inputs.as_slice(ts), q.inputs.as_slice(ts));
            let union_bytes = packages[p_idx].input_bytes + q.input_bytes - shared;
            if union_bytes > memory {
                continue;
            }
            if best.is_none_or(|(_, bs)| shared > bs) {
                best = Some((q_idx, shared));
            }
        }
        match best {
            Some((q_idx, _)) => merge_naive(ts, &mut packages, p_idx, q_idx),
            None => packages[p_idx].frozen = true,
        }
    }

    // Phase 2: affinity merging without the memory bound.
    while packages.len() > k {
        let p_idx = packages
            .iter()
            .enumerate()
            .min_by_key(|(i, p)| (p.tasks.len(), *i))
            .map(|(i, _)| i)
            .expect("non-empty");
        let mut best: Option<(usize, u64)> = None;
        for (q_idx, q) in packages.iter().enumerate() {
            if q_idx == p_idx {
                continue;
            }
            let shared = shared_bytes(ts, packages[p_idx].inputs.as_slice(ts), q.inputs.as_slice(ts));
            if best.is_none_or(|(_, bs)| shared > bs) {
                best = Some((q_idx, shared));
            }
        }
        let (q_idx, _) = best.expect("at least two packages");
        merge_naive(ts, &mut packages, p_idx, q_idx);
    }

    balance(ts, &mut packages, k);
    finish(packages, k)
}

/// The HFP / mHFP scheduler. `K = 1` gives the single-GPU HFP of the
/// earlier COLOC paper; `K > 1` adds the balancing and stealing of
/// Algorithm 4.
#[derive(Debug)]
pub struct HfpScheduler {
    window: usize,
    steal: bool,
    queues: Option<StealingQueues>,
    /// Probe kept until `prepare` builds the queues that emit with it.
    probe: Option<Probe>,
    /// Online mode flag, set by `prepare_stream`.
    online: bool,
    /// Online mode: admitted-but-unserved tasks, in admission order.
    pending: Vec<TaskId>,
    /// Online mode: arrivals since the last packing; the next pop
    /// re-packs the whole pending horizon.
    dirty: bool,
    #[cfg(feature = "naive")]
    naive_pack: bool,
}

impl Default for HfpScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl HfpScheduler {
    /// Paper-default mHFP (Ready window, stealing enabled).
    pub fn new() -> Self {
        Self {
            window: DEFAULT_READY_WINDOW,
            steal: true,
            queues: None,
            probe: None,
            online: false,
            pending: Vec::new(),
            dirty: false,
            #[cfg(feature = "naive")]
            naive_pack: false,
        }
    }

    /// Disable stealing (ablation).
    pub fn without_stealing(mut self) -> Self {
        self.steal = false;
        self
    }

    /// Use the original quadratic packing in `prepare` (the paper's
    /// measured scheduling time — `--paper-timing` in the harness). The
    /// produced queues, and therefore every runtime decision, are
    /// identical; `name()` does not encode the mode.
    #[cfg(feature = "naive")]
    pub fn with_naive_pack(mut self) -> Self {
        self.naive_pack = true;
        self
    }

    /// Online mode: re-pack the entire pending horizon into fresh
    /// stealing queues. Dead GPUs' lists fold into the lightest survivor
    /// so every pending task stays reachable even with stealing disabled.
    fn repack(&mut self, view: &RuntimeView<'_>) {
        let ts = view.task_set();
        let spec = view.spec();
        let k = spec.num_gpus;
        // The phase-1 bound tracks the current (possibly shrunk) memory
        // of the tightest alive GPU; with no faults this is exactly
        // `spec.memory_bytes`, keeping t = 0 runs batch-identical.
        let memory = (0..k)
            .filter(|&g| view.is_alive(GpuId(g as u32)))
            .map(|g| view.capacity(GpuId(g as u32)))
            .min()
            .unwrap_or(spec.memory_bytes);
        let mut lists = pack_subset(ts, &PackConfig::new(memory, k), &self.pending);
        let alive: Vec<usize> = (0..k).filter(|&g| view.is_alive(GpuId(g as u32))).collect();
        if alive.len() < k && !alive.is_empty() {
            for g in 0..k {
                if !view.is_alive(GpuId(g as u32)) && !lists[g].is_empty() {
                    let moved = std::mem::take(&mut lists[g]);
                    let &target = alive
                        .iter()
                        .min_by_key(|&&h| (lists[h].len(), h))
                        .expect("alive is non-empty");
                    lists[target].extend(moved);
                }
            }
        }
        let mut sq = StealingQueues::new(lists, self.window, self.steal);
        if let Some(p) = &self.probe {
            sq.attach_probe(p.clone());
        }
        self.queues = Some(sq);
        self.dirty = false;
    }
}

impl Scheduler for HfpScheduler {
    fn name(&self) -> String {
        "mHFP".into()
    }

    fn prepare(&mut self, ts: &TaskSet, spec: &PlatformSpec) {
        let config = PackConfig::new(spec.memory_bytes, spec.num_gpus);
        #[cfg(feature = "naive")]
        let config = if self.naive_pack {
            config.with_naive()
        } else {
            config
        };
        let queues = pack_with(ts, &config);
        let mut sq = StealingQueues::new(queues, self.window, self.steal)
            .with_groups((0..spec.num_gpus).map(|g| spec.bus_of(g)).collect());
        if let Some(p) = &self.probe {
            sq.attach_probe(p.clone());
        }
        self.queues = Some(sq);
        self.online = false;
    }

    fn prepare_stream(&mut self, _ts: &TaskSet, spec: &PlatformSpec) {
        // Start with empty queues; the first pop after each burst of
        // arrivals re-packs the pending horizon (lazy incremental HFP).
        self.online = true;
        self.pending = Vec::new();
        self.dirty = false;
        let mut sq = StealingQueues::new(
            vec![Vec::new(); spec.num_gpus],
            self.window,
            self.steal,
        );
        if let Some(p) = &self.probe {
            sq.attach_probe(p.clone());
        }
        self.queues = Some(sq);
    }

    fn on_task_arrival(&mut self, task: TaskId, _view: &RuntimeView<'_>) {
        // Packing is deferred to the next pop so a burst of simultaneous
        // arrivals is packed once; with every arrival at t = 0 the first
        // pop packs the full task set exactly as the batch `prepare`.
        self.pending.push(task);
        self.dirty = true;
    }

    fn attach_probe(&mut self, probe: Probe) {
        if let Some(q) = self.queues.as_mut() {
            q.attach_probe(probe.clone());
        }
        self.probe = Some(probe);
    }

    fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
        if self.online && self.dirty {
            self.repack(view);
        }
        let t = self
            .queues
            .as_mut()
            .expect("prepare() must run first")
            .pop(gpu, view)?;
        if self.online {
            if let Some(pos) = self.pending.iter().position(|&p| p == t) {
                self.pending.remove(pos);
            }
        }
        Some(t)
    }

    fn on_gpu_failed(&mut self, gpu: GpuId, lost: &[TaskId], view: &RuntimeView<'_>) {
        if self.online {
            // The orphans rejoin the pending horizon; the dead GPU's
            // still-queued tasks are already pending, and the next pop
            // re-packs everything onto the survivors.
            self.pending.extend_from_slice(lost);
            self.dirty = true;
            return;
        }
        // The dead GPU's package tail folds into the survivors through
        // the ordinary stealing machinery.
        if let Some(q) = self.queues.as_mut() {
            q.return_tasks(gpu, lost, view);
        }
    }

    fn decomposes_per_group(&self) -> bool {
        // Batch only: the packing is fixed in `prepare` and runtime
        // interactions go through the group-scoped stealing queues. The
        // online incremental re-pack spans all GPUs.
        !self.online
    }

    fn group_task_counts(&self, groups: &[usize], num_groups: usize) -> Option<Vec<usize>> {
        if self.online {
            return None;
        }
        self.queues
            .as_ref()
            .map(|q| q.group_task_counts(groups, num_groups))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsched_model::figure1_example;
    use memsched_platform::run;
    use memsched_workloads::gemm_2d;
    use proptest::prelude::*;

    #[test]
    fn union_and_shared_are_consistent() {
        let ts = gemm_2d(3);
        let a = vec![0u32, 2, 4];
        let b = vec![1u32, 2, 5];
        assert_eq!(union_inputs(&a, &b), vec![0, 1, 2, 4, 5]);
        let item = ts.data_size(DataId(0));
        assert_eq!(shared_bytes(&ts, &a, &b), item);
    }

    #[test]
    fn pack_single_gpu_groups_by_affinity() {
        let ts = figure1_example();
        // Memory of 3 unit data items: packages of one grid row fit.
        let lists = pack(&ts, 3, 1);
        assert_eq!(lists.len(), 1);
        assert_eq!(lists[0].len(), 9);
        // Consecutive tasks should mostly share data: count adjacent pairs
        // with at least one shared input.
        let adjacent_shared = lists[0]
            .windows(2)
            .filter(|w| ts.shared_inputs(w[0], w[1]) > 0)
            .count();
        assert!(adjacent_shared >= 5, "affinity order: {adjacent_shared}/8");
    }

    #[test]
    fn pack_balances_two_gpus() {
        let ts = gemm_2d(6);
        let item = ts.data_size(DataId(0));
        let lists = pack(&ts, 6 * item, 2);
        assert_eq!(lists.len(), 2);
        let (a, b) = (lists[0].len(), lists[1].len());
        assert_eq!(a + b, 36);
        assert!(a.abs_diff(b) <= 2, "balance {a} vs {b}");
    }

    #[test]
    fn packages_respect_memory_in_phase_one() {
        // With memory for 2 unit items and 2-input tasks, phase-1 packages
        // have at most 2 distinct inputs; final k-merge may exceed it.
        let ts = figure1_example();
        let lists = pack(&ts, 2, 9); // k = task count: phase 1 only
        let total: usize = lists.iter().map(Vec::len).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn phase_one_packages_fit_in_memory_with_exact_footprints() {
        // Run phase 1 alone (k = 1 forces it to merge or freeze until no
        // memory-respecting merge remains) and inspect the actual package
        // footprints: every package must fit in the bound, and the
        // incrementally-maintained `input_bytes` must equal the re-summed
        // byte total of the recorded input union.
        for (ts, memory) in [(figure1_example(), 3), (gemm_2d(5), {
            let ts = gemm_2d(5);
            4 * ts.data_size(DataId(0))
        })] {
            let mut state = PackState::new(&ts);
            state.phase1(memory, 1);
            assert!(!state.packages.is_empty());
            for p in &state.packages {
                assert!(
                    p.input_bytes <= memory,
                    "package of {} tasks overflows: {} > {memory}",
                    p.tasks.len(),
                    p.input_bytes
                );
                let inputs = p.inputs.as_slice(&ts);
                let resummed: u64 = inputs.iter().map(|&d| ts.data_size(DataId(d))).sum();
                assert_eq!(p.input_bytes, resummed, "footprint bookkeeping drifted");
                assert!(inputs.windows(2).all(|w| w[0] < w[1]), "unsorted union");
            }
            let total: usize = state.packages.iter().map(|p| p.tasks.len()).sum();
            assert_eq!(total, ts.num_tasks());
        }
    }

    #[test]
    fn runs_everything_end_to_end() {
        let ts = gemm_2d(6);
        let item = ts.data_size(DataId(0));
        let spec = PlatformSpec::v100(2).with_memory(6 * item);
        let mut sched = HfpScheduler::new();
        let report = run(&ts, &spec, &mut sched).unwrap();
        let total: usize = report.per_gpu.iter().map(|g| g.tasks).sum();
        assert_eq!(total, 36);
    }

    #[test]
    fn beats_eager_loads_under_pressure() {
        let ts = gemm_2d(10);
        let item = ts.data_size(DataId(0));
        let spec = PlatformSpec::v100(1).with_memory(6 * item);
        let mut hfp = HfpScheduler::new();
        let mut eager = crate::eager::EagerScheduler::new();
        let hfp_loads = run(&ts, &spec, &mut hfp).unwrap().total_loads;
        let eager_loads = run(&ts, &spec, &mut eager).unwrap().total_loads;
        assert!(
            hfp_loads < eager_loads,
            "HFP {hfp_loads} vs EAGER {eager_loads}"
        );
    }

    #[test]
    fn empty_padding_when_fewer_tasks_than_gpus() {
        let mut b = memsched_model::TaskSetBuilder::new();
        let d = b.add_data(1);
        b.add_task(&[d], 1.0);
        let ts = b.build();
        let lists = pack(&ts, 10, 4);
        assert_eq!(lists.len(), 4);
        assert_eq!(lists.iter().map(Vec::len).sum::<usize>(), 1);
    }

    /// Random task sets with non-uniform data sizes, as exercised by the
    /// pack proptests below.
    fn arb_taskset() -> impl Strategy<Value = TaskSet> {
        (2usize..=10, 1usize..=18)
            .prop_flat_map(|(nd, mt)| {
                let sizes = proptest::collection::vec(1u64..=4, nd);
                let inputs = proptest::collection::vec(
                    proptest::collection::vec(0..nd as u32, 1..=3),
                    mt,
                );
                (sizes, inputs)
            })
            .prop_map(|(sizes, task_inputs)| {
                let mut b = memsched_model::TaskSetBuilder::new();
                let data: Vec<DataId> = sizes.iter().map(|&s| b.add_data(s)).collect();
                for ins in task_inputs {
                    let ids: Vec<DataId> = ins.iter().map(|&i| data[i as usize]).collect();
                    b.add_task(&ids, 1000.0);
                }
                b.build()
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `pack` is a permutation: every task appears exactly once across
        /// the k lists, for any memory bound and list count.
        #[test]
        fn pack_is_a_permutation_of_all_tasks(
            ts in arb_taskset(),
            mem in 1u64..40,
            k in 1usize..5,
        ) {
            let lists = pack(&ts, mem, k);
            prop_assert_eq!(lists.len(), k.max(1));
            let mut seen = vec![false; ts.num_tasks()];
            for t in lists.iter().flatten() {
                prop_assert!(!seen[t.index()], "task {} packed twice", t.index());
                seen[t.index()] = true;
            }
            prop_assert!(seen.iter().all(|&s| s), "some task never packed");
        }

        /// Phase-1 packages never exceed the memory bound (checked against
        /// the exact recorded footprint, not just task counts).
        #[test]
        fn phase_one_footprints_respect_bound(
            ts in arb_taskset(),
            mem in 1u64..40,
        ) {
            let mut state = PackState::new(&ts);
            state.phase1(mem, 1);
            for p in &state.packages {
                if p.tasks.len() > 1 {
                    prop_assert!(
                        p.input_bytes <= mem,
                        "merged package footprint {} > {mem}",
                        p.input_bytes
                    );
                }
                let resummed: u64 = p
                    .inputs
                    .as_slice(&ts)
                    .iter()
                    .map(|&d| ts.data_size(DataId(d)))
                    .sum();
                prop_assert_eq!(p.input_bytes, resummed);
            }
        }
    }
}
