//! ROUTER — the residency-aware request router (sixth scheduler
//! family), modeled on Preble's multi-GPU prefix-cache scheduler.
//!
//! Per task, every GPU is scored as
//!
//! ```text
//! score_k(T_i) = recomp_bytes_k(T_i) + α · load_k
//! ```
//!
//! where `recomp_bytes_k` is the bytes of `T_i`'s inputs not present on
//! GPU `k` — the cost of (re)materializing the missing part of its
//! prefix path — and `load_k` is the GPU's outstanding *routed* work in
//! bytes: the recomputation costs charged to it by earlier unfinished
//! placements (Preble's `mem_cost[selected] += recomp`) plus in-flight
//! transfer bytes. The task goes to the deterministic argmin (ties →
//! lowest GPU index). The first term rewards placing a request where
//! its shared ancestors already live; the second keeps a hot prefix
//! from welding the whole stream onto one GPU. Charging only the
//! *miss* bytes (not full footprints) matters: a warm request adds no
//! load, so affinity is self-reinforcing exactly when it is free.
//!
//! Online, `recomp_bytes` is read in O(1) from the engine's
//! [`MissingCache`](RuntimeView::missing_bytes); in the batch prepare
//! (no runtime view yet) it is predicted from the same planned-`InMem`
//! accounting DMDA uses. Eviction installs a pinned-ancestor hint
//! (LUF-style): the planned future uses of every data item on each GPU
//! are known from the routed queues, so the victim is the resident item
//! with the fewest planned uses — interior tree nodes shared by many
//! queued requests are evicted last.

use std::collections::VecDeque;

use memsched_model::{DataId, GpuId, TaskId, TaskSet};
use memsched_platform::obs::{GaugeKind, ObsEvent};
use memsched_platform::{PlatformSpec, Probe, RuntimeView, Scheduler};

/// Default α in thousandths: 0.1 — a queued byte costs a tenth of a
/// recomputed byte. Affinity has to dominate for a prefix tree: the
/// recomp term is what keeps a shared prefix on one GPU, and an α near
/// 1.0 lets transient queue imbalance split hot subtrees across GPUs
/// (duplicating their bytes on both), while α = 0 collapses every
/// request onto GPU 0 and thrashes its cache. 0.1 keeps enough load
/// signal to spread cold subtrees without breaking warm affinity.
pub const DEFAULT_ALPHA_MILLI: u64 = 100;

/// The residency-aware router (see module docs).
#[derive(Debug)]
pub struct RouterScheduler {
    /// Load weight α in thousandths (`score = recomp + α·load`).
    alpha_milli: u64,
    /// Per-GPU FIFO of routed tasks.
    queues: Vec<VecDeque<TaskId>>,
    /// Per-GPU outstanding bytes: recomputation costs charged by tasks
    /// routed here and not yet completed.
    queued_bytes: Vec<u64>,
    /// Per-task recomputation cost charged at routing time (credited
    /// back on completion).
    routed_cost: Vec<u64>,
    /// Per-GPU bytes currently crossing the interconnect toward the GPU
    /// (maintained by `on_load_issued`/`on_data_loaded`).
    inflight_bytes: Vec<u64>,
    /// Per-GPU planned-residency sets for the batch prepare (the DMDA
    /// `InMem` analogue; unused online, where the `MissingCache` view is
    /// authoritative).
    planned: Vec<Vec<bool>>,
    /// Per (GPU, data): planned future uses by routed-but-unfinished
    /// tasks — the LUF eviction hint.
    future_uses: Vec<Vec<u32>>,
    /// Set by `prepare_stream`; routes through the runtime view.
    online: bool,
    /// Observability probe (queue-depth gauges on pop).
    probe: Option<Probe>,
}

impl Default for RouterScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl RouterScheduler {
    /// Router with the default α = 1.0.
    pub fn new() -> Self {
        RouterScheduler {
            alpha_milli: DEFAULT_ALPHA_MILLI,
            queues: Vec::new(),
            queued_bytes: Vec::new(),
            routed_cost: Vec::new(),
            inflight_bytes: Vec::new(),
            planned: Vec::new(),
            future_uses: Vec::new(),
            online: false,
            probe: None,
        }
    }

    /// Builder: set α in thousandths (0 = pure affinity, no load term).
    pub fn with_alpha_milli(mut self, alpha_milli: u64) -> Self {
        self.alpha_milli = alpha_milli;
        self
    }

    /// The per-GPU routing computed so far (for tests).
    pub fn queues(&self) -> &[VecDeque<TaskId>] {
        &self.queues
    }

    fn reset(&mut self, num_gpus: usize, num_data: usize, num_tasks: usize) {
        self.queues = vec![VecDeque::new(); num_gpus];
        self.queued_bytes = vec![0; num_gpus];
        self.routed_cost = vec![0; num_tasks];
        self.inflight_bytes = vec![0; num_gpus];
        self.planned = vec![vec![false; num_data]; num_gpus];
        self.future_uses = vec![vec![0; num_data]; num_gpus];
    }

    /// `α·load` of GPU `g`, in score units (bytes).
    fn load_term(&self, g: usize) -> u64 {
        (self.queued_bytes[g] + self.inflight_bytes[g]) * self.alpha_milli / 1000
    }

    /// Enqueue `t` on `g`, charging its routing-time `recomp` cost to
    /// the GPU's load, and update the uses/planned accounting.
    fn commit(&mut self, ts: &TaskSet, g: usize, t: TaskId, recomp: u64) {
        self.queues[g].push_back(t);
        self.queued_bytes[g] += recomp;
        self.routed_cost[t.index()] = recomp;
        for &d in ts.inputs(t) {
            self.future_uses[g][d as usize] += 1;
            self.planned[g][d as usize] = true;
        }
    }

    /// Route `t` by the batch (planned-residency) score. `alive` filters
    /// candidate GPUs; with none alive the task parks on GPU 0 so the
    /// engine can surface the abort itself.
    fn route_planned(&mut self, ts: &TaskSet, t: TaskId, alive: impl Fn(usize) -> bool) {
        let mut best: Option<(u64, u64, usize)> = None;
        for g in 0..self.queues.len() {
            if !alive(g) {
                continue;
            }
            let recomp: u64 = ts
                .input_ids(t)
                .filter(|&d| !self.planned[g][d.index()])
                .map(|d| ts.data_size(d))
                .sum();
            let score = recomp + self.load_term(g);
            if best.is_none_or(|(bs, _, bg)| (score, g) < (bs, bg)) {
                best = Some((score, recomp, g));
            }
        }
        let (recomp, g) = best.map_or((ts.task_footprint(t), 0), |(_, r, g)| (r, g));
        self.commit(ts, g, t, recomp);
    }

    /// Route `t` by the runtime score: bytes the GPU would genuinely
    /// have to fetch, plus the load term. An input counts as free when
    /// it is resident (or already in flight) on the GPU *or* when an
    /// earlier request routed there has planned its fetch — the second
    /// clause is the prefix-affinity signal that keeps a burst of
    /// requests sharing a cold prefix from duplicating it across GPUs
    /// before the first fetch lands.
    fn route_runtime(&mut self, ts: &TaskSet, t: TaskId, view: &RuntimeView<'_>) {
        let mut best: Option<(u64, u64, usize)> = None;
        for g in 0..self.queues.len() {
            if !view.is_alive(GpuId(g as u32)) {
                continue;
            }
            let recomp: u64 = ts
                .input_ids(t)
                .filter(|&d| {
                    !self.planned[g][d.index()]
                        && !view.is_resident_or_loading(GpuId(g as u32), d)
                })
                .map(|d| ts.data_size(d))
                .sum();
            let score = recomp + self.load_term(g);
            if best.is_none_or(|(bs, _, bg)| (score, g) < (bs, bg)) {
                best = Some((score, recomp, g));
            }
        }
        let (recomp, g) = best.map_or((ts.task_footprint(t), 0), |(_, r, g)| (r, g));
        self.commit(ts, g, t, recomp);
    }
}

impl Scheduler for RouterScheduler {
    fn name(&self) -> String {
        "ROUTER".into()
    }

    fn prepare(&mut self, ts: &TaskSet, spec: &PlatformSpec) {
        self.reset(spec.num_gpus, ts.num_data(), ts.num_tasks());
        self.online = false;
        for t in ts.tasks() {
            self.route_planned(ts, t, |_| true);
        }
    }

    fn prepare_stream(&mut self, ts: &TaskSet, spec: &PlatformSpec) {
        self.reset(spec.num_gpus, ts.num_data(), ts.num_tasks());
        self.online = true;
    }

    fn on_task_arrival(&mut self, task: TaskId, view: &RuntimeView<'_>) {
        self.route_runtime(view.task_set(), task, view);
    }

    fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
        let task = self.queues[gpu.index()].pop_front()?;
        if let Some(p) = &self.probe {
            p.emit(ObsEvent::Gauge {
                t: view.now(),
                gpu: Some(gpu.0),
                kind: GaugeKind::ReadyQueueDepth,
                value: self.queues[gpu.index()].len() as f64,
            });
        }
        Some(task)
    }

    fn choose_victim(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<DataId> {
        // LUF over the routed horizon: evict the resident item with the
        // fewest planned future uses on this GPU (ascending-id scan, so
        // ties break toward the smallest id — the determinism contract).
        // Shared ancestors of queued requests have high use counts and
        // survive. Pinned data is skipped — the engine would reject it.
        //
        // When the minimum is zero the routed horizon says nothing about
        // the candidate (online queues are shallow; a hot ancestor
        // between two of its requests also reads zero), so the hint
        // defers to the engine's LRU fallback — recency is the better
        // predictor where the plan is silent. Only a positive count is
        // real knowledge worth overriding LRU with.
        let g = gpu.index();
        let mut best: Option<(u32, DataId)> = None;
        for d in view.resident(gpu) {
            if view.is_pinned(gpu, d) {
                continue;
            }
            let uses = self.future_uses[g][d.index()];
            if uses == 0 {
                return None; // no knowledge here: let LRU pick
            }
            if best.is_none_or(|(bu, _)| uses < bu) {
                best = Some((uses, d));
            }
        }
        best.map(|(_, d)| d)
    }

    fn on_task_complete(&mut self, gpu: GpuId, task: TaskId, view: &RuntimeView<'_>) {
        let g = gpu.index();
        let ts = view.task_set();
        let cost = std::mem::take(&mut self.routed_cost[task.index()]);
        self.queued_bytes[g] = self.queued_bytes[g].saturating_sub(cost);
        for &d in ts.inputs(task) {
            let uses = &mut self.future_uses[g][d as usize];
            *uses = uses.saturating_sub(1);
        }
    }

    fn on_load_issued(&mut self, gpu: GpuId, data: DataId, view: &RuntimeView<'_>) {
        self.inflight_bytes[gpu.index()] += view.task_set().data_size(data);
    }

    fn on_data_loaded(&mut self, gpu: GpuId, data: DataId, view: &RuntimeView<'_>) {
        let g = gpu.index();
        self.inflight_bytes[g] =
            self.inflight_bytes[g].saturating_sub(view.task_set().data_size(data));
    }

    fn on_gpu_failed(&mut self, gpu: GpuId, lost: &[TaskId], view: &RuntimeView<'_>) {
        // Re-score the orphans — the interrupted pipeline first, then the
        // dead GPU's unserved queue, in original order — across the
        // survivors. Runtime residency is authoritative here even in
        // batch mode: the survivors' actual caches, not the stale
        // prepare-time plan, decide where recomputation is cheapest.
        let g = gpu.index();
        let mut orphans: Vec<TaskId> = lost.to_vec();
        orphans.extend(self.queues[g].drain(..));
        self.queued_bytes[g] = 0;
        self.inflight_bytes[g] = 0;
        self.future_uses[g].fill(0);
        self.planned[g].fill(false);
        let any_alive = (0..self.queues.len()).any(|h| view.is_alive(GpuId(h as u32)));
        if !any_alive {
            // Nothing to reroute to; the engine aborts the run.
            self.queues[g].extend(orphans);
            return;
        }
        let ts = view.task_set();
        for t in orphans {
            self.route_runtime(ts, t, view);
        }
    }

    fn decomposes_per_group(&self) -> bool {
        // The batch routing is fully static after `prepare`; each GPU
        // then serves its own FIFO, and every runtime hook touches only
        // that GPU's counters. The online router couples all GPUs
        // through the shared load scores.
        !self.online
    }

    fn group_task_counts(&self, groups: &[usize], num_groups: usize) -> Option<Vec<usize>> {
        if self.online {
            return None;
        }
        let mut out = vec![0; num_groups];
        for (g, q) in self.queues.iter().enumerate() {
            out[groups[g]] += q.len();
        }
        Some(out)
    }

    fn attach_probe(&mut self, probe: Probe) {
        self.probe = Some(probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsched_platform::run;
    use memsched_workloads::prefix::{prefix_tree, tree_bytes, PrefixConfig};
    use memsched_workloads::gemm_2d;

    fn small_tree() -> memsched_model::TaskSet {
        prefix_tree(&PrefixConfig {
            depth: 3,
            fanout: 3,
            tasks: 60,
            item_bytes: 1 << 16,
            zipf_s: 1.1,
            seed: 11,
        })
    }

    #[test]
    fn batch_routing_covers_all_tasks() {
        let ts = small_tree();
        let spec = PlatformSpec::v100(2);
        let mut s = RouterScheduler::new();
        s.prepare(&ts, &spec);
        let total: usize = s.queues().iter().map(VecDeque::len).sum();
        assert_eq!(total, 60);
        assert!(
            s.queues().iter().all(|q| !q.is_empty()),
            "load term must spread a hot prefix across both GPUs"
        );
    }

    #[test]
    fn affinity_groups_shared_paths() {
        // With α = 0 (pure affinity) every task after the first that
        // shares the full hot path must land on the same GPU.
        let ts = small_tree();
        let spec = PlatformSpec::v100(2);
        let mut s = RouterScheduler::new().with_alpha_milli(0);
        s.prepare(&ts, &spec);
        let mut gpu_of_inputs = std::collections::HashMap::new();
        for (g, q) in s.queues().iter().enumerate() {
            for &t in q {
                gpu_of_inputs
                    .entry(ts.inputs(t).to_vec())
                    .or_insert_with(Vec::new)
                    .push(g);
            }
        }
        for (_, gpus) in gpu_of_inputs {
            assert!(
                gpus.windows(2).all(|w| w[0] == w[1]),
                "identical paths split across GPUs under pure affinity"
            );
        }
    }

    #[test]
    fn runs_the_prefix_workload_under_pressure() {
        let ts = small_tree();
        // 2× cache pressure: each GPU holds a quarter of the tree.
        let mem = (tree_bytes(&ts) / 4).max(4 * (1 << 16));
        let spec = PlatformSpec::v100(2).with_memory(mem);
        let mut s = RouterScheduler::new();
        let report = run(&ts, &spec, &mut s).unwrap();
        let tasks: usize = report.per_gpu.iter().map(|g| g.tasks).sum();
        assert_eq!(tasks, 60);
    }

    #[test]
    fn router_beats_eager_on_transfer_bytes() {
        let ts = prefix_tree(&PrefixConfig {
            depth: 4,
            fanout: 3,
            tasks: 200,
            item_bytes: 1 << 18,
            zipf_s: 1.1,
            seed: 5,
        });
        let mem = (tree_bytes(&ts) / 4).max(16 * (1 << 18));
        let spec = PlatformSpec::v100(2).with_memory(mem);
        let router = run(&ts, &spec, &mut RouterScheduler::new()).unwrap();
        let eager = run(&ts, &spec, &mut crate::EagerScheduler::new()).unwrap();
        assert!(
            router.total_load_bytes < eager.total_load_bytes,
            "router {} vs eager {}",
            router.total_load_bytes,
            eager.total_load_bytes
        );
    }

    #[test]
    fn works_on_dense_gemm_too() {
        // The router is a general policy: it must complete non-tree
        // workloads (satellite engine-mode coverage, not a perf claim).
        let ts = gemm_2d(6);
        let tile = ts.data_size(DataId(0));
        let spec = PlatformSpec::v100(2).with_memory(6 * tile);
        let report = run(&ts, &spec, &mut RouterScheduler::new()).unwrap();
        let tasks: usize = report.per_gpu.iter().map(|g| g.tasks).sum();
        assert_eq!(tasks, 36);
    }

    #[test]
    fn name_is_router() {
        assert_eq!(RouterScheduler::new().name(), "ROUTER");
    }
}
