//! DARTS — Data-Aware Reactive Task Scheduling (Algorithm 5) with the LUF
//! (Least Used in the Future) eviction policy (Algorithm 6), §IV-D.
//!
//! DARTS inverts the usual scheduling question: instead of choosing a task
//! and fetching its data, it chooses the **data** whose load enables the
//! most "free" tasks — tasks all of whose other inputs are already on the
//! GPU — and reserves those tasks (`plannedTasks_k`). Tie-breaks are
//! randomized so concurrent GPUs rarely compete for the same data.
//!
//! Variants from the paper:
//! * **LUF eviction** — evict a data item unused by the committed
//!   `taskBuffer_k`, with the fewest uses in `plannedTasks_k`; fall back
//!   to Belady's rule on `taskBuffer_k`;
//! * **3inputs** — when no single data frees a task, pick a data belonging
//!   to the most "one more load" pairs instead of a random task;
//! * **OPTI** — stop the candidate scan at the first data enabling ≥ 1
//!   free task (bounds the scheduling time on huge task sets);
//! * **threshold** — cap the number of candidate data examined per refill.
//!
//! # Incremental hot path
//!
//! The paper flags the candidate scan as DARTS's scalability weakness
//! (Fig. 8): recomputing `nbFreeTasks(D)` for every unloaded data on every
//! refill costs `O(|D| · consumers · inputs)`. This implementation instead
//! maintains, per GPU, the exact quantity the scan derives — `n_free[d]` =
//! number of FREE tasks whose missing inputs are contained in `{d}` — as
//! event-driven state, updated from the engine's residency notifications
//! ([`Scheduler::on_load_issued`], [`Scheduler::on_data_evicted`]) and the
//! scheduler's own task-state transitions. The candidates live in a bucket
//! queue ([`UsefulIndex`]) keyed by `n_free`, so a refill pops the argmax
//! in `O(|ties|)`; each residency or task event costs `O(consumers(d))` or
//! `O(inputs(t))` — amortized, the work the scan redid per decision is
//! done once per event. The selection is *provably the same*: candidate
//! order and tie sets are reproduced exactly (ascending data id, identical
//! RNG draw placement), which the golden traces and the `naive`
//! differential tests enforce. The original full-scan implementation is
//! kept behind the `naive` feature as the reference.

use memsched_model::{DataId, GpuId, TaskId, TaskSet};
use memsched_platform::obs::{GaugeKind, ObsEvent};
use memsched_platform::{PlatformSpec, Probe, RuntimeView, Scheduler};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeSet, VecDeque};

/// Eviction policy used by DARTS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DartsEviction {
    /// The runtime default (StarPU-style LRU).
    Lru,
    /// Least Used in the Future (Algorithm 6).
    Luf,
}

/// Configuration of [`DartsScheduler`].
#[derive(Clone, Debug)]
pub struct DartsConfig {
    /// Eviction policy.
    pub eviction: DartsEviction,
    /// Enable the 3inputs fallback.
    pub three_inputs: bool,
    /// Enable the OPTI early-exit scan.
    pub opti: bool,
    /// Cap on the number of candidate data examined per refill.
    pub threshold: Option<usize>,
    /// Seed for randomized tie-breaking.
    pub seed: u64,
    /// Run the original full-scan implementations instead of the
    /// incremental ones (differential testing and benchmarking only).
    #[cfg(feature = "naive")]
    pub naive: bool,
}

impl Default for DartsConfig {
    fn default() -> Self {
        Self {
            eviction: DartsEviction::Luf,
            three_inputs: false,
            opti: false,
            threshold: None,
            seed: 0xDA27,
            #[cfg(feature = "naive")]
            naive: false,
        }
    }
}

impl DartsConfig {
    /// Plain DARTS with LRU eviction (the "DARTS" curves of the paper).
    pub fn lru() -> Self {
        Self {
            eviction: DartsEviction::Lru,
            ..Self::default()
        }
    }

    /// DARTS+LUF (the paper's headline configuration).
    pub fn luf() -> Self {
        Self::default()
    }

    /// Builder: enable 3inputs.
    pub fn with_three_inputs(mut self) -> Self {
        self.three_inputs = true;
        self
    }

    /// Builder: enable OPTI.
    pub fn with_opti(mut self) -> Self {
        self.opti = true;
        self
    }

    /// Builder: set the candidate threshold.
    pub fn with_threshold(mut self, threshold: usize) -> Self {
        self.threshold = Some(threshold.max(1));
        self
    }

    /// Builder: set the tie-break seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: use the original full-scan reference implementation.
    #[cfg(feature = "naive")]
    pub fn with_naive(mut self) -> Self {
        self.naive = true;
        self
    }
}

/// Bucket queue over the *useful* candidates of one GPU: the data ids `d`
/// with `dataNotInMem[d] && n_free[d] > 0`, bucketed by `n_free` value.
///
/// Updates must be O(1) — they run inside the engine's residency event
/// hooks, once per consumer per load/evict — so `buckets[n]` is an
/// unsorted `Vec` with a per-data position index (`pos`) for swap-remove.
/// The ascending-id tie order the naive scan produces is recovered at
/// refill time by sorting the (small) argmax bucket. `all` keeps the
/// whole candidate set in ascending order, but only the OPTI/threshold
/// variants read it, so it is maintained only when `ordered` is set.
/// `max_n` is maintained lazily downwards, amortized O(1) per operation.
#[derive(Clone, Debug, Default)]
struct UsefulIndex {
    /// Maintain `all` (required by the OPTI and threshold variants).
    ordered: bool,
    all: BTreeSet<u32>,
    buckets: Vec<Vec<u32>>,
    /// Per data id: index within its bucket (meaningless when absent).
    pos: Vec<u32>,
    max_n: usize,
    len: usize,
}

impl UsefulIndex {
    fn new(num_data: usize, ordered: bool) -> Self {
        Self {
            ordered,
            all: BTreeSet::new(),
            buckets: Vec::new(),
            pos: vec![0; num_data],
            max_n: 0,
            len: 0,
        }
    }

    fn insert(&mut self, d: u32, n: u32) {
        debug_assert!(n > 0);
        if self.ordered {
            self.all.insert(d);
        }
        let n = n as usize;
        if self.buckets.len() <= n {
            self.buckets.resize_with(n + 1, Vec::new);
        }
        self.pos[d as usize] = self.buckets[n].len() as u32;
        self.buckets[n].push(d);
        self.max_n = self.max_n.max(n);
        self.len += 1;
    }

    fn remove(&mut self, d: u32, n: u32) {
        if self.ordered {
            self.all.remove(&d);
        }
        let bucket = &mut self.buckets[n as usize];
        let i = self.pos[d as usize] as usize;
        debug_assert_eq!(bucket[i], d);
        bucket.swap_remove(i);
        if let Some(&moved) = bucket.get(i) {
            self.pos[moved as usize] = i as u32;
        }
        while self.max_n > 0 && self.buckets[self.max_n].is_empty() {
            self.max_n -= 1;
        }
        self.len -= 1;
    }

    /// `d`'s `n_free` changed from `old` to `new` while it stayed (or
    /// became / stopped being) a member.
    fn reposition(&mut self, d: u32, old: u32, new: u32) {
        match (old, new) {
            (o, n) if o == n => {}
            (0, n) => self.insert(d, n),
            (o, 0) => self.remove(d, o),
            (o, n) => {
                // Move buckets without touching `all` (membership stable).
                let bucket = &mut self.buckets[o as usize];
                let i = self.pos[d as usize] as usize;
                debug_assert_eq!(bucket[i], d);
                bucket.swap_remove(i);
                if let Some(&moved) = bucket.get(i) {
                    self.pos[moved as usize] = i as u32;
                }
                let n = n as usize;
                if self.buckets.len() <= n {
                    self.buckets.resize_with(n + 1, Vec::new);
                }
                self.pos[d as usize] = self.buckets[n].len() as u32;
                self.buckets[n].push(d);
                self.max_n = self.max_n.max(n);
                while self.max_n > 0 && self.buckets[self.max_n].is_empty() {
                    self.max_n -= 1;
                }
            }
        }
    }

    /// The argmax tie set in ascending id order (the naive scan's tie
    /// order), written into `out`.
    fn argmax_sorted(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(&self.buckets[self.max_n]);
        out.sort_unstable();
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A Fenwick tree over task ids supporting O(log m) insert/remove and
/// "select the k-th smallest member" — the uniform random FREE-task draw
/// without the O(m) state scan.
#[derive(Clone, Debug, Default)]
struct FenwickSet {
    tree: Vec<u32>, // 1-based partial counts
}

impl FenwickSet {
    /// The full set {0, …, m-1}.
    fn full(m: usize) -> Self {
        let mut s = Self::empty(m);
        for i in 0..m {
            s.add(i, 1);
        }
        s
    }

    /// The empty set over the universe {0, …, m-1} (online mode: tasks
    /// join as they arrive).
    fn empty(m: usize) -> Self {
        Self {
            tree: vec![0; m + 1],
        }
    }

    fn add(&mut self, i: usize, delta: i32) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    fn insert(&mut self, i: usize) {
        self.add(i, 1);
    }

    fn remove(&mut self, i: usize) {
        self.add(i, -1);
    }

    /// The k-th smallest member (0-based rank). Caller guarantees the set
    /// holds more than `k` elements.
    fn select(&self, mut k: u32) -> usize {
        let n = self.tree.len() - 1;
        let mut pos = 0usize;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= n && self.tree[next] <= k {
                pos = next;
                k -= self.tree[next];
            }
            step >>= 1;
        }
        pos
    }
}

/// The DARTS scheduler.
pub struct DartsScheduler {
    cfg: DartsConfig,
    rng: StdRng,
    /// Per GPU: the data this GPU has not (knowingly) loaded yet.
    data_not_in_mem: Vec<Vec<bool>>,
    /// Per GPU: planned (reserved) tasks, popped front-first.
    planned: Vec<VecDeque<TaskId>>,
    /// Task state: 0 = unallocated, 1 = planned/running, 2 = done.
    task_state: Vec<u8>,
    /// Number of tasks not yet planned or done.
    unallocated: usize,
    /// Number of tasks not yet done (planned or not).
    unfinished: usize,
    // --- incremental hot-path state (bypassed in naive mode) ---
    /// Per GPU: ordered mirror of `data_not_in_mem` (3inputs scan domain).
    not_in_mem_ids: Vec<BTreeSet<u32>>,
    /// Per GPU, per data: FREE tasks whose missing inputs ⊆ {d} — the
    /// `nbFreeTasks(D)` the naive refill recomputes per candidate.
    n_free: Vec<Vec<u32>>,
    /// Per GPU: bucket queue over {d : not_in_mem[d] && n_free[d] > 0}.
    useful: Vec<UsefulIndex>,
    /// Per GPU, per data: uses in `planned[g]` — LUF's np(D) in O(1).
    planned_uses: Vec<Vec<u32>>,
    /// Per data: consumers not yet DONE — Algorithm 5 line 9's tie-break.
    n_unprocessed: Vec<u32>,
    /// Per GPU, per data (3inputs variant only): FREE consumers with
    /// exactly one / exactly two missing inputs. Together they give the
    /// 3inputs candidate score in O(1): a FREE consumer of `D` counts
    /// exactly when its missing count is 1 if `D` is loaded/loading
    /// (the sole missing input is the "one more load") or 2 if `D` is
    /// absent (`D` itself is necessarily one of the two).
    m1_consumers: Vec<Vec<u32>>,
    m2_consumers: Vec<Vec<u32>>,
    /// The FREE task ids, supporting the k-th-smallest draw.
    free_tasks: FenwickSet,
    /// Reused buffer for the refill argmax tie set (avoids a per-decision
    /// allocation on the hottest path).
    refill_scratch: Vec<u32>,
    /// Reused buffer for the tasks reserved by a refill.
    reserve_scratch: Vec<TaskId>,
    /// Per data: epoch stamp + first-use position in the task buffer,
    /// rebuilt in one buffer pass per LUF eviction decision.
    cv_stamp: Vec<u32>,
    cv_first: Vec<u32>,
    cv_epoch: u32,
    /// Observability probe (`nbFreeTasks` / planned-depth gauges).
    probe: Option<Probe>,
}

const FREE: u8 = 0;
const TAKEN: u8 = 1;
const DONE: u8 = 2;
/// Online mode only: the task has not arrived yet — invisible to every
/// decision rule until `on_task_arrival` releases it to FREE.
const PENDING: u8 = 3;

impl DartsScheduler {
    /// Build with the given configuration.
    pub fn new(cfg: DartsConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            rng,
            data_not_in_mem: Vec::new(),
            planned: Vec::new(),
            task_state: Vec::new(),
            unallocated: 0,
            unfinished: 0,
            not_in_mem_ids: Vec::new(),
            n_free: Vec::new(),
            useful: Vec::new(),
            planned_uses: Vec::new(),
            n_unprocessed: Vec::new(),
            m1_consumers: Vec::new(),
            m2_consumers: Vec::new(),
            free_tasks: FenwickSet::default(),
            refill_scratch: Vec::new(),
            reserve_scratch: Vec::new(),
            cv_stamp: Vec::new(),
            cv_first: Vec::new(),
            cv_epoch: 0,
            probe: None,
        }
    }

    #[inline]
    fn is_naive(&self) -> bool {
        #[cfg(feature = "naive")]
        {
            self.cfg.naive
        }
        #[cfg(not(feature = "naive"))]
        {
            false
        }
    }

    /// Number of free (unallocated, unfinished) tasks enabled by loading
    /// `d` on `gpu`: tasks consuming `d` whose other inputs are all
    /// resident (or already in flight). Reference implementation of the
    /// `n_free` counters, used by the naive configuration.
    #[cfg(feature = "naive")]
    fn n_free_scan(&self, ts: &TaskSet, view: &RuntimeView<'_>, gpu: GpuId, d: DataId) -> usize {
        ts.consumer_ids(d)
            .filter(|&t| self.task_state[t.index()] == FREE)
            .filter(|&t| {
                ts.input_ids(t)
                    .all(|i| i == d || view.is_resident_or_loading(gpu, i))
            })
            .count()
    }

    /// Number of unprocessed (not DONE) tasks depending on `d` by scan —
    /// reference implementation of the `n_unprocessed` counters.
    #[cfg(feature = "naive")]
    fn n_unprocessed_scan(&self, ts: &TaskSet, d: DataId) -> usize {
        // FREE | TAKEN, not `!= DONE`: online mode must not count tasks
        // that have not arrived yet (batch has no PENDING state, so this
        // is the historical filter there).
        ts.consumer_ids(d)
            .filter(|&t| matches!(self.task_state[t.index()], FREE | TAKEN))
            .count()
    }

    /// Adjust `n_free[g][d]` by `delta`, keeping the bucket queue in sync
    /// when `d` is a useful candidate (i.e. believed not in memory).
    fn bump_n_free(&mut self, g: usize, d: u32, delta: i32) {
        let slot = &mut self.n_free[g][d as usize];
        let old = *slot;
        let new = (old as i64 + delta as i64) as u32;
        *slot = new;
        if self.data_not_in_mem[g][d as usize] {
            self.useful[g].reposition(d, old, new);
        }
    }

    /// Add (`delta = 1`) or withdraw (`delta = -1`) the contribution of a
    /// FREE task to the `n_free` counters of **every** GPU: a task with no
    /// missing input on `g` counts for each of its inputs there; one
    /// missing input counts for that input alone; more counts for none.
    fn contrib(&mut self, ts: &TaskSet, view: &RuntimeView<'_>, t: TaskId, delta: i32) {
        for g in 0..self.planned.len() {
            let gpu = GpuId(g as u32);
            let m = view.missing_inputs(gpu, t);
            match m {
                0 => {
                    for &i in ts.inputs(t) {
                        self.bump_n_free(g, i, delta);
                    }
                }
                1 => {
                    let sole = view.sole_missing_input(gpu, t).expect("one missing input");
                    self.bump_n_free(g, sole.0, delta);
                }
                _ => {}
            }
            if self.cfg.three_inputs && (m == 1 || m == 2) {
                let counts = if m == 1 {
                    &mut self.m1_consumers
                } else {
                    &mut self.m2_consumers
                };
                for &i in ts.inputs(t) {
                    let slot = &mut counts[g][i as usize];
                    *slot = (*slot as i64 + delta as i64) as u32;
                }
            }
        }
    }

    /// Flip `dataNotInMem_g[d]`, keeping the ordered mirror and the
    /// candidate bucket queue consistent. Idempotent like the plain
    /// boolean write it replaces.
    fn set_not_in_mem(&mut self, g: usize, d: u32, absent: bool) {
        if self.data_not_in_mem[g][d as usize] == absent {
            return;
        }
        self.data_not_in_mem[g][d as usize] = absent;
        if self.is_naive() {
            return;
        }
        // The ordered mirror is the 3inputs scan domain — skip its
        // maintenance for every other variant.
        if self.cfg.three_inputs {
            if absent {
                self.not_in_mem_ids[g].insert(d);
            } else {
                self.not_in_mem_ids[g].remove(&d);
            }
        }
        let n = self.n_free[g][d as usize];
        if n > 0 {
            if absent {
                self.useful[g].insert(d, n);
            } else {
                self.useful[g].remove(d, n);
            }
        }
    }

    /// A planned task left `planned[g]` for the worker pipeline.
    fn on_planned_pop(&mut self, ts: &TaskSet, g: usize, t: TaskId) {
        if self.is_naive() {
            return;
        }
        for &i in ts.inputs(t) {
            self.planned_uses[g][i as usize] -= 1;
        }
    }

    /// Fill `plannedTasks_gpu` by selecting the best data to load
    /// (Algorithm 5, lines 4–11). Returns true if tasks were planned.
    ///
    /// The candidate set is read off the bucket queue instead of scanned;
    /// each variant reproduces the naive scan outcome exactly:
    /// * **OPTI** — the scan stops at the first useful candidate, i.e. the
    ///   smallest id in the useful set;
    /// * **threshold** — the scan sees exactly the first `cap` useful
    ///   candidates in ascending id order and keeps the argmax among them
    ///   (all ties, in scan order);
    /// * **plain** — the whole argmax bucket, ascending by id.
    fn refill(&mut self, ts: &TaskSet, view: &RuntimeView<'_>, gpu: GpuId) -> bool {
        #[cfg(feature = "naive")]
        if self.cfg.naive {
            return self.refill_scan(ts, view, gpu);
        }
        let g = gpu.index();
        if self.useful[g].is_empty() {
            return false;
        }
        let mut tie = std::mem::take(&mut self.refill_scratch);
        if self.cfg.opti {
            tie.clear();
            tie.push(*self.useful[g].all.iter().next().expect("non-empty"));
        } else if let Some(cap) = self.cfg.threshold {
            tie.clear();
            let mut best = 0u32;
            for &d in self.useful[g].all.iter().take(cap) {
                let n = self.n_free[g][d as usize];
                if n > best {
                    best = n;
                    tie.clear();
                    tie.push(d);
                } else if n == best {
                    tie.push(d);
                }
            }
        } else {
            self.useful[g].argmax_sorted(&mut tie);
        }
        debug_assert!(!tie.is_empty());

        // Among equals, prefer the data useful to the most tasks overall;
        // break the remaining ties randomly (Algorithm 5, line 9). Two
        // passes over the tie set — count the finalists, draw one, walk to
        // it — so no per-decision allocation.
        let mut best_useful = 0u32;
        let mut num_finalists = 0usize;
        for &d in &tie {
            let n = self.n_unprocessed[d as usize];
            if n > best_useful {
                best_useful = n;
                num_finalists = 1;
            } else if n == best_useful {
                num_finalists += 1;
            }
        }
        let pick = self.rng.random_range(0..num_finalists);
        let mut dopt = DataId(tie[0]);
        let mut seen = 0usize;
        for &d in &tie {
            if self.n_unprocessed[d as usize] == best_useful {
                if seen == pick {
                    dopt = DataId(d);
                    break;
                }
                seen += 1;
            }
        }
        self.refill_scratch = tie;

        // Reserve every free task enabled by dopt: missing inputs ⊆ {dopt}.
        let mut free = std::mem::take(&mut self.reserve_scratch);
        free.clear();
        free.extend(
            ts.consumer_ids(dopt)
                .filter(|&t| self.task_state[t.index()] == FREE)
                .filter(|&t| match view.missing_inputs(gpu, t) {
                    0 => true,
                    1 => view.sole_missing_input(gpu, t) == Some(dopt),
                    _ => false,
                }),
        );
        for &t in &free {
            self.contrib(ts, view, t, -1);
            self.free_tasks.remove(t.index());
            self.task_state[t.index()] = TAKEN;
            self.unallocated -= 1;
            self.planned[g].push_back(t);
            for &i in ts.inputs(t) {
                self.planned_uses[g][i as usize] += 1;
            }
        }
        let planned_any = !free.is_empty();
        self.reserve_scratch = free;
        self.set_not_in_mem(g, dopt.0, false);
        planned_any
    }

    /// The original full-scan refill, kept verbatim as the differential
    /// reference (the `naive` configuration).
    #[cfg(feature = "naive")]
    fn refill_scan(&mut self, ts: &TaskSet, view: &RuntimeView<'_>, gpu: GpuId) -> bool {
        let g = gpu.index();
        let mut nmax = 0usize;
        let mut candidates: Vec<DataId> = Vec::new();
        let mut useful = 0usize;
        for di in 0..ts.num_data() {
            if !self.data_not_in_mem[g][di] {
                continue;
            }
            let d = DataId::from_usize(di);
            // The threshold variant stops after examining `cap` *useful*
            // candidates (data enabling at least one free task), keeping
            // the best seen so far — bounding the scan like the paper's
            // Figure 8 fix while preserving a reasonable choice.
            if let Some(cap) = self.cfg.threshold {
                if useful >= cap {
                    break;
                }
            }
            let n = self.n_free_scan(ts, view, gpu, d);
            if n > 0 {
                useful += 1;
            }
            if n > nmax {
                nmax = n;
                candidates.clear();
                candidates.push(d);
                if self.cfg.opti {
                    break; // first data enabling at least one task wins
                }
            } else if n == nmax && n > 0 {
                candidates.push(d);
            }
        }
        if nmax == 0 {
            return false;
        }
        // Among equals, prefer the data useful to the most tasks overall;
        // break the remaining ties randomly (Algorithm 5, line 9).
        let scored: Vec<(DataId, usize)> = candidates
            .into_iter()
            .map(|d| (d, self.n_unprocessed_scan(ts, d)))
            .collect();
        let best_useful = scored
            .iter()
            .map(|&(_, n)| n)
            .max()
            .expect("candidates non-empty");
        let finalists: Vec<DataId> = scored
            .into_iter()
            .filter(|&(_, n)| n == best_useful)
            .map(|(d, _)| d)
            .collect();
        let dopt = finalists[self.rng.random_range(0..finalists.len())];

        // Reserve every free task enabled by dopt.
        let free: Vec<TaskId> = ts
            .consumer_ids(dopt)
            .filter(|&t| self.task_state[t.index()] == FREE)
            .filter(|&t| {
                ts.input_ids(t)
                    .all(|i| i == dopt || view.is_resident_or_loading(gpu, i))
            })
            .collect();
        for &t in &free {
            self.task_state[t.index()] = TAKEN;
            self.unallocated -= 1;
            self.planned[g].push_back(t);
        }
        self.data_not_in_mem[g][dopt.index()] = false;
        !free.is_empty()
    }

    /// The original LUF victim scan: nb(D) and the next-use position are
    /// recomputed with a buffer scan per resident item, np(D) with a
    /// planned-queue scan (the `naive` configuration).
    #[cfg(feature = "naive")]
    fn choose_victim_scan(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<DataId> {
        let ts = view.task_set();
        let g = gpu.index();
        let buffer = view.task_buffer(gpu);
        let mut best_free: Option<(usize, DataId)> = None; // (np, D) with nb == 0
        let mut best_belady: Option<(usize, DataId)> = None; // furthest next use
        for d in view.resident(gpu) {
            if view.is_pinned(gpu, d) {
                continue;
            }
            let nb = buffer
                .clone()
                .filter(|&t| ts.inputs(t).binary_search(&d.0).is_ok())
                .count();
            if nb == 0 {
                let np = self.planned[g]
                    .iter()
                    .filter(|&&t| ts.inputs(t).binary_search(&d.0).is_ok())
                    .count();
                if best_free.is_none_or(|(bnp, _)| np < bnp) {
                    best_free = Some((np, d));
                }
            } else {
                // Next use position in the buffer (Belady on committed tasks).
                let next = buffer
                    .clone()
                    .position(|t| ts.inputs(t).binary_search(&d.0).is_ok())
                    .unwrap_or(usize::MAX);
                if best_belady.is_none_or(|(bn, _)| next > bn) {
                    best_belady = Some((next, d));
                }
            }
        }
        best_free.map(|(_, d)| d).or(best_belady.map(|(_, d)| d))
    }

    /// The 3inputs fallback: find the data `D` maximizing the number of
    /// free tasks that need `D` plus exactly one other unloaded data, and
    /// return one such task.
    ///
    /// Each candidate's score is read off the m1/m2 consumer counters in
    /// O(1) — a FREE consumer of `D` counts exactly when its missing-input
    /// count is 1 if `D` is already loaded/loading, or 2 if `D` is absent
    /// (then `D` itself is one of the two) — instead of a consumer walk
    /// per candidate. The candidate domain iterates the ordered
    /// `dataNotInMem` mirror, preserving the naive ascending scan order.
    fn three_inputs_pick(
        &mut self,
        ts: &TaskSet,
        view: &RuntimeView<'_>,
        gpu: GpuId,
    ) -> Option<TaskId> {
        #[cfg(feature = "naive")]
        if self.cfg.naive {
            return self.three_inputs_pick_scan(ts, view, gpu);
        }
        let g = gpu.index();
        let mut best: Option<(usize, DataId)> = None;
        let mut useful = 0usize;
        for &di in &self.not_in_mem_ids[g] {
            if let Some(cap) = self.cfg.threshold {
                if useful >= cap {
                    break;
                }
            }
            let d = DataId(di);
            let n = if view.is_resident_or_loading(gpu, d) {
                self.m1_consumers[g][di as usize]
            } else {
                self.m2_consumers[g][di as usize]
            } as usize;
            if n > 0 {
                useful += 1;
                if best.is_none_or(|(bn, _)| n > bn) {
                    best = Some((n, d));
                    if self.cfg.opti {
                        break;
                    }
                }
            }
        }
        let (_, d) = best?;
        let want = if view.is_resident_or_loading(gpu, d) { 1 } else { 2 };
        let t = ts.consumer_ids(d).find(|&t| {
            self.task_state[t.index()] == FREE && view.missing_inputs(gpu, t) == want
        })?;
        self.take_task(ts, view, gpu, t);
        Some(t)
    }

    /// The original full-scan 3inputs fallback (the `naive` configuration).
    #[cfg(feature = "naive")]
    fn three_inputs_pick_scan(
        &mut self,
        ts: &TaskSet,
        view: &RuntimeView<'_>,
        gpu: GpuId,
    ) -> Option<TaskId> {
        let g = gpu.index();
        let mut best: Option<(usize, DataId)> = None;
        let mut useful = 0usize;
        for di in 0..ts.num_data() {
            if !self.data_not_in_mem[g][di] {
                continue;
            }
            if let Some(cap) = self.cfg.threshold {
                if useful >= cap {
                    break;
                }
            }
            let d = DataId::from_usize(di);
            let n = ts
                .consumer_ids(d)
                .filter(|&t| self.task_state[t.index()] == FREE)
                .filter(|&t| {
                    ts.input_ids(t)
                        .filter(|&i| i != d && !view.is_resident_or_loading(gpu, i))
                        .count()
                        == 1
                })
                .count();
            if n > 0 {
                useful += 1;
                if best.is_none_or(|(bn, _)| n > bn) {
                    best = Some((n, d));
                    if self.cfg.opti {
                        break;
                    }
                }
            }
        }
        let (_, d) = best?;
        let t = ts.consumer_ids(d).find(|&t| {
            self.task_state[t.index()] == FREE
                && ts
                    .input_ids(t)
                    .filter(|&i| i != d && !view.is_resident_or_loading(gpu, i))
                    .count()
                    == 1
        })?;
        self.take_task(ts, view, gpu, t);
        Some(t)
    }

    /// Allocate `t` to `gpu` outside of `plannedTasks` (fallback paths):
    /// its inputs leave `dataNotInMem_gpu` (Algorithm 5, line 13).
    fn take_task(&mut self, ts: &TaskSet, view: &RuntimeView<'_>, gpu: GpuId, t: TaskId) {
        if !self.is_naive() {
            self.contrib(ts, view, t, -1);
            self.free_tasks.remove(t.index());
        }
        self.task_state[t.index()] = TAKEN;
        self.unallocated -= 1;
        for d in ts.input_ids(t) {
            self.set_not_in_mem(gpu.index(), d.0, false);
        }
    }

    /// Number of tasks not yet completed (planned or not).
    pub fn remaining(&self) -> usize {
        self.unfinished
    }

    /// A uniformly random unallocated task: one RNG draw, then the n-th
    /// FREE task in ascending id order (Fenwick select instead of the
    /// naive O(m) state scan).
    fn random_task(&mut self) -> Option<TaskId> {
        if self.unallocated == 0 {
            return None;
        }
        let nth = self.rng.random_range(0..self.unallocated);
        #[cfg(feature = "naive")]
        if self.cfg.naive {
            let mut seen = 0;
            for (i, &s) in self.task_state.iter().enumerate() {
                if s == FREE {
                    if seen == nth {
                        return Some(TaskId::from_usize(i));
                    }
                    seen += 1;
                }
            }
            return None;
        }
        Some(TaskId::from_usize(self.free_tasks.select(nth as u32)))
    }
}

impl DartsScheduler {
    /// The actual pop logic ([`Scheduler::pop_task`] wraps it with the
    /// post-decision gauge emission).
    fn pop_task_inner(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
        let ts = view.task_set();
        let g = gpu.index();
        if let Some(t) = self.planned[g].pop_front() {
            self.on_planned_pop(ts, g, t);
            return Some(t);
        }
        if self.refill(ts, view, gpu) {
            let t = self.planned[g].pop_front();
            if let Some(t) = t {
                self.on_planned_pop(ts, g, t);
            }
            return t;
        }
        // No data frees a task (e.g. the very beginning of the run).
        if self.cfg.three_inputs {
            if let Some(t) = self.three_inputs_pick(ts, view, gpu) {
                return Some(t);
            }
        }
        let t = self.random_task()?;
        self.take_task(ts, view, gpu, t);
        Some(t)
    }
}

impl Scheduler for DartsScheduler {
    fn name(&self) -> String {
        let mut name = String::from("DARTS");
        if self.cfg.eviction == DartsEviction::Luf {
            name.push_str("+LUF");
        }
        if self.cfg.opti {
            name.push_str("+OPTI");
        }
        if self.cfg.threshold.is_some() {
            name.push_str("+threshold");
        }
        if self.cfg.three_inputs {
            name.push_str("-3inputs");
        }
        name
    }

    fn prepare(&mut self, ts: &TaskSet, spec: &PlatformSpec) {
        let k = spec.num_gpus;
        let (nd, m) = (ts.num_data(), ts.num_tasks());
        self.data_not_in_mem = vec![vec![true; nd]; k];
        self.planned = vec![VecDeque::new(); k];
        self.task_state = vec![FREE; m];
        self.unallocated = m;
        self.unfinished = m;
        if self.is_naive() {
            return;
        }
        // Initially nothing is resident anywhere, so a task's missing set
        // is its whole input list: only single-input tasks contribute.
        let mut n_free0 = vec![0u32; nd];
        for t in ts.tasks() {
            if let [d] = ts.inputs(t) {
                n_free0[*d as usize] += 1;
            }
        }
        let ordered = self.cfg.opti || self.cfg.threshold.is_some();
        let mut useful0 = UsefulIndex::new(nd, ordered);
        for (d, &n) in n_free0.iter().enumerate() {
            if n > 0 {
                useful0.insert(d as u32, n);
            }
        }
        self.n_free = vec![n_free0; k];
        self.useful = vec![useful0; k];
        if self.cfg.three_inputs {
            self.not_in_mem_ids = vec![(0..nd as u32).collect::<BTreeSet<u32>>(); k];
            // Nothing resident: a task's missing count is its input count.
            let mut m1 = vec![0u32; nd];
            let mut m2 = vec![0u32; nd];
            for t in ts.tasks() {
                let ins = ts.inputs(t);
                let counts = match ins.len() {
                    1 => &mut m1,
                    2 => &mut m2,
                    _ => continue,
                };
                for &d in ins {
                    counts[d as usize] += 1;
                }
            }
            self.m1_consumers = vec![m1; k];
            self.m2_consumers = vec![m2; k];
        } else {
            self.not_in_mem_ids = vec![BTreeSet::new(); k];
            self.m1_consumers = Vec::new();
            self.m2_consumers = Vec::new();
        }
        self.planned_uses = vec![vec![0u32; nd]; k];
        self.n_unprocessed = (0..nd)
            .map(|d| ts.consumers(DataId::from_usize(d)).len() as u32)
            .collect();
        self.free_tasks = FenwickSet::full(m);
        self.cv_stamp = vec![0; nd];
        self.cv_first = vec![0; nd];
        self.cv_epoch = 0;
    }

    fn prepare_stream(&mut self, ts: &TaskSet, spec: &PlatformSpec) {
        // Same layout as `prepare`, but every task starts PENDING and
        // every data-driven counter starts at zero: the horizon is empty
        // until arrivals release tasks through `on_task_arrival`.
        let k = spec.num_gpus;
        let (nd, m) = (ts.num_data(), ts.num_tasks());
        self.data_not_in_mem = vec![vec![true; nd]; k];
        self.planned = vec![VecDeque::new(); k];
        self.task_state = vec![PENDING; m];
        self.unallocated = 0;
        self.unfinished = m;
        if self.is_naive() {
            return;
        }
        let ordered = self.cfg.opti || self.cfg.threshold.is_some();
        self.n_free = vec![vec![0u32; nd]; k];
        self.useful = vec![UsefulIndex::new(nd, ordered); k];
        if self.cfg.three_inputs {
            self.not_in_mem_ids = vec![(0..nd as u32).collect::<BTreeSet<u32>>(); k];
            self.m1_consumers = vec![vec![0u32; nd]; k];
            self.m2_consumers = vec![vec![0u32; nd]; k];
        } else {
            self.not_in_mem_ids = vec![BTreeSet::new(); k];
            self.m1_consumers = Vec::new();
            self.m2_consumers = Vec::new();
        }
        self.planned_uses = vec![vec![0u32; nd]; k];
        self.n_unprocessed = vec![0; nd];
        self.free_tasks = FenwickSet::empty(m);
        self.cv_stamp = vec![0; nd];
        self.cv_first = vec![0; nd];
        self.cv_epoch = 0;
    }

    fn on_task_arrival(&mut self, task: TaskId, view: &RuntimeView<'_>) {
        // Mirrors the eviction-release path: the task becomes visible to
        // the refill (FREE), joins the random-draw set, and each input
        // gains an unprocessed consumer and the task's `n_free`
        // contribution. With every arrival at t = 0 this rebuilds exactly
        // the `prepare` state before the first pop, which is what makes
        // the t = 0 stream run decision-equivalent to batch.
        debug_assert_eq!(self.task_state[task.index()], PENDING);
        self.task_state[task.index()] = FREE;
        self.unallocated += 1;
        if self.is_naive() {
            return; // the naive scans read `task_state` live
        }
        let ts = view.task_set();
        self.free_tasks.insert(task.index());
        for &d in ts.inputs(task) {
            self.n_unprocessed[d as usize] += 1;
        }
        self.contrib(ts, view, task, 1);
    }

    fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
        let t = self.pop_task_inner(gpu, view);
        if let Some(p) = &self.probe {
            // DARTS's decision state, after the pop: how many tasks are
            // still unallocated (the paper's nbFreeTasks pool) and how
            // deep this GPU's planned queue is.
            p.emit(ObsEvent::Gauge {
                t: view.now(),
                gpu: None,
                kind: GaugeKind::NbFreeTasks,
                value: self.unallocated as f64,
            });
            p.emit(ObsEvent::Gauge {
                t: view.now(),
                gpu: Some(gpu.0),
                kind: GaugeKind::ReadyQueueDepth,
                value: self.planned[gpu.index()].len() as f64,
            });
        }
        t
    }

    fn attach_probe(&mut self, probe: Probe) {
        self.probe = Some(probe);
    }

    fn choose_victim(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<DataId> {
        if self.cfg.eviction != DartsEviction::Luf {
            return None; // defer to the runtime's LRU
        }
        #[cfg(feature = "naive")]
        if self.cfg.naive {
            return self.choose_victim_scan(gpu, view);
        }
        let ts = view.task_set();
        let g = gpu.index();
        let buffer = view.task_buffer(gpu);

        // nb(D): uses in taskBuffer; np(D): uses in plannedTasks. One pass
        // over the buffer stamps each input data with its first-use
        // position, so the resident walk tests nb(D) > 0 and reads the
        // next use in O(1) — instead of re-scanning the buffer once per
        // resident item. np is read off the planned-use counters.
        self.cv_epoch += 1;
        let epoch = self.cv_epoch;
        for (pos, t) in buffer.enumerate() {
            for &i in ts.inputs(t) {
                let i = i as usize;
                if self.cv_stamp[i] != epoch {
                    self.cv_stamp[i] = epoch;
                    self.cv_first[i] = pos as u32;
                }
            }
        }

        let mut best_free: Option<(usize, DataId)> = None; // (np, D) with nb == 0
        let mut best_belady: Option<(usize, DataId)> = None; // furthest next use
        for d in view.resident(gpu) {
            if view.is_pinned(gpu, d) {
                continue;
            }
            if self.cv_stamp[d.index()] != epoch {
                let np = self.planned_uses[g][d.index()] as usize;
                if best_free.is_none_or(|(bnp, _)| np < bnp) {
                    best_free = Some((np, d));
                }
            } else {
                // Next use position in the buffer (Belady on committed tasks).
                let next = self.cv_first[d.index()] as usize;
                if best_belady.is_none_or(|(bn, _)| next > bn) {
                    best_belady = Some((next, d));
                }
            }
        }
        best_free.map(|(_, d)| d).or(best_belady.map(|(_, d)| d))
    }

    fn on_task_complete(&mut self, _gpu: GpuId, task: TaskId, view: &RuntimeView<'_>) {
        if self.task_state[task.index()] == DONE {
            return;
        }
        if !self.is_naive() {
            // Tasks only complete after being popped, so no n_free
            // contribution to withdraw here (TAKEN tasks have none).
            debug_assert_eq!(self.task_state[task.index()], TAKEN);
            let ts = view.task_set();
            for &d in ts.inputs(task) {
                self.n_unprocessed[d as usize] -= 1;
            }
        }
        self.task_state[task.index()] = DONE;
        self.unfinished -= 1;
    }

    fn on_load_issued(&mut self, gpu: GpuId, data: DataId, view: &RuntimeView<'_>) {
        if self.is_naive() {
            return; // the naive scans read residency live
        }
        let ts = view.task_set();
        let g = gpu.index();
        // The missing sets of `data`'s consumers shrank on `g` (the
        // engine's cache already reflects it); re-aim their contributions.
        for t in ts.consumer_ids(data) {
            if self.task_state[t.index()] != FREE {
                continue;
            }
            let m = view.missing_inputs(gpu, t);
            match m {
                // 1 → 0 missing: was counting towards `data` alone, now
                // towards every input (the count on `data` is unchanged).
                0 => {
                    for &i in ts.inputs(t) {
                        if i != data.0 {
                            self.bump_n_free(g, i, 1);
                        }
                    }
                }
                // 2 → 1 missing: starts counting towards its sole missing.
                1 => {
                    let sole = view.sole_missing_input(gpu, t).expect("one missing input");
                    self.bump_n_free(g, sole.0, 1);
                }
                _ => {}
            }
            if self.cfg.three_inputs {
                // Keep the m1/m2 consumer counts in step with the m+1 → m
                // transition.
                match m {
                    0 => {
                        for &i in ts.inputs(t) {
                            self.m1_consumers[g][i as usize] -= 1;
                        }
                    }
                    1 => {
                        for &i in ts.inputs(t) {
                            self.m2_consumers[g][i as usize] -= 1;
                            self.m1_consumers[g][i as usize] += 1;
                        }
                    }
                    2 => {
                        for &i in ts.inputs(t) {
                            self.m2_consumers[g][i as usize] += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    fn on_data_loaded(&mut self, gpu: GpuId, data: DataId, _view: &RuntimeView<'_>) {
        // The data is now in memory whatever the reason it was fetched.
        // Residency-wise nothing changes for the decision rules (Loading
        // already counted), so only the belief flag moves.
        self.set_not_in_mem(gpu.index(), data.0, false);
    }

    fn on_data_evicted(&mut self, gpu: GpuId, data: DataId, view: &RuntimeView<'_>) {
        let ts = view.task_set();
        let g = gpu.index();
        if !self.is_naive() {
            // The missing sets of `data`'s consumers grew on `g`.
            for t in ts.consumer_ids(data) {
                if self.task_state[t.index()] != FREE {
                    continue;
                }
                let m = view.missing_inputs(gpu, t);
                match m {
                    // 0 → 1 missing: was counting towards every input, now
                    // towards `data` alone.
                    1 => {
                        for &i in ts.inputs(t) {
                            if i != data.0 {
                                self.bump_n_free(g, i, -1);
                            }
                        }
                    }
                    // 1 → 2 missing: stops counting towards the formerly
                    // sole missing input.
                    2 => {
                        let partner = view
                            .missing_pair_partner(gpu, t, data)
                            .expect("two missing inputs");
                        self.bump_n_free(g, partner.0, -1);
                    }
                    _ => {}
                }
                if self.cfg.three_inputs {
                    // Keep the m1/m2 consumer counts in step with the
                    // m-1 → m transition.
                    match m {
                        1 => {
                            for &i in ts.inputs(t) {
                                self.m1_consumers[g][i as usize] += 1;
                            }
                        }
                        2 => {
                            for &i in ts.inputs(t) {
                                self.m1_consumers[g][i as usize] -= 1;
                                self.m2_consumers[g][i as usize] += 1;
                            }
                        }
                        3 => {
                            for &i in ts.inputs(t) {
                                self.m2_consumers[g][i as usize] -= 1;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        self.set_not_in_mem(g, data.0, true);
        // Algorithm 6, line 8: release planned tasks that depended on the
        // evicted data so they can be re-planned (here or elsewhere).
        let dependents: Vec<TaskId> = self.planned[g]
            .iter()
            .copied()
            .filter(|&t| ts.inputs(t).binary_search(&data.0).is_ok())
            .collect();
        if !dependents.is_empty() {
            self.planned[g].retain(|t| !dependents.contains(t));
            for t in dependents {
                debug_assert_eq!(self.task_state[t.index()], TAKEN);
                self.task_state[t.index()] = FREE;
                self.unallocated += 1;
                if !self.is_naive() {
                    self.free_tasks.insert(t.index());
                    for &i in ts.inputs(t) {
                        self.planned_uses[g][i as usize] -= 1;
                    }
                    self.contrib(ts, view, t, 1);
                }
            }
        }
    }

    fn on_gpu_failed(&mut self, gpu: GpuId, lost: &[TaskId], view: &RuntimeView<'_>) {
        // Fail-stop recovery mirrors the eviction-release path: every task
        // committed to the dead GPU reverts to FREE so the per-GPU
        // counters (`n_free`, `planned_uses`, the Fenwick draw set) see it
        // again and the survivors re-plan it.
        let ts = view.task_set();
        let g = gpu.index();
        // Unserved planned tasks: still counted in `planned_uses[g]`.
        let planned: Vec<TaskId> = self.planned[g].drain(..).collect();
        for t in planned {
            debug_assert_eq!(self.task_state[t.index()], TAKEN);
            self.task_state[t.index()] = FREE;
            self.unallocated += 1;
            if !self.is_naive() {
                self.free_tasks.insert(t.index());
                for &i in ts.inputs(t) {
                    self.planned_uses[g][i as usize] -= 1;
                }
                self.contrib(ts, view, t, 1);
            }
        }
        // Pipelined tasks: `on_planned_pop` already dropped their
        // `planned_uses` when the worker popped them, so only the state
        // and the free-task contribution come back.
        for &t in lost {
            debug_assert_eq!(self.task_state[t.index()], TAKEN);
            self.task_state[t.index()] = FREE;
            self.unallocated += 1;
            if !self.is_naive() {
                self.free_tasks.insert(t.index());
                self.contrib(ts, view, t, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsched_model::figure1_example;
    use memsched_platform::run;
    use memsched_workloads::{gemm_2d, gemm_2d_random, gemm_3d};

    #[test]
    fn names_encode_variants() {
        assert_eq!(DartsScheduler::new(DartsConfig::lru()).name(), "DARTS");
        assert_eq!(DartsScheduler::new(DartsConfig::luf()).name(), "DARTS+LUF");
        assert_eq!(
            DartsScheduler::new(DartsConfig::luf().with_opti().with_three_inputs()).name(),
            "DARTS+LUF+OPTI-3inputs"
        );
        assert_eq!(
            DartsScheduler::new(DartsConfig::luf().with_threshold(10)).name(),
            "DARTS+LUF+threshold"
        );
    }

    #[test]
    fn completes_figure1_with_tight_memory() {
        let ts = figure1_example();
        let spec = PlatformSpec::v100(1).with_memory(2).with_pipeline_depth(2);
        let mut s = DartsScheduler::new(DartsConfig::luf());
        let report = run(&ts, &spec, &mut s).unwrap();
        assert_eq!(report.per_gpu[0].tasks, 9);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn near_optimal_loads_when_memory_fits() {
        let ts = gemm_2d(6);
        let spec = PlatformSpec::v100(1);
        let mut s = DartsScheduler::new(DartsConfig::luf());
        let report = run(&ts, &spec, &mut s).unwrap();
        assert_eq!(report.total_loads, 12, "each data loaded exactly once");
    }

    #[test]
    fn luf_no_worse_than_lru_under_pressure() {
        let ts = gemm_2d(10);
        let item = ts.data_size(DataId(0));
        let spec = PlatformSpec::v100(1).with_memory(6 * item);
        let mut lru = DartsScheduler::new(DartsConfig::lru());
        let mut luf = DartsScheduler::new(DartsConfig::luf());
        let loads_lru = run(&ts, &spec, &mut lru).unwrap().total_loads;
        let loads_luf = run(&ts, &spec, &mut luf).unwrap().total_loads;
        assert!(
            loads_luf <= loads_lru,
            "LUF {loads_luf} vs LRU {loads_lru}"
        );
    }

    #[test]
    fn beats_eager_on_randomized_order() {
        // The headline Figure 9 effect at miniature scale: randomized
        // submission order devastates order-dependent schedulers but not
        // DARTS, which picks its own data-driven order.
        let ts = gemm_2d_random(10, 3);
        let item = ts.data_size(DataId(0));
        let spec = PlatformSpec::v100(2).with_memory(6 * item);
        let mut darts = DartsScheduler::new(DartsConfig::luf());
        let mut eager = crate::eager::EagerScheduler::new();
        let darts_loads = run(&ts, &spec, &mut darts).unwrap().total_loads;
        let eager_loads = run(&ts, &spec, &mut eager).unwrap().total_loads;
        assert!(
            darts_loads < eager_loads,
            "DARTS {darts_loads} vs EAGER {eager_loads}"
        );
    }

    #[test]
    fn multi_gpu_splits_work_without_conflicts() {
        let ts = gemm_2d(8);
        let spec = PlatformSpec::v100(2);
        let mut s = DartsScheduler::new(DartsConfig::luf());
        let report = run(&ts, &spec, &mut s).unwrap();
        let total: usize = report.per_gpu.iter().map(|g| g.tasks).sum();
        assert_eq!(total, 64);
        assert!(report.per_gpu.iter().all(|g| g.tasks > 10), "both GPUs work");
    }

    #[test]
    fn three_inputs_handles_3d_product() {
        let ts = gemm_3d(4);
        let item = ts.data_size(DataId(0));
        let spec = PlatformSpec::v100(2).with_memory(8 * item);
        let mut s = DartsScheduler::new(DartsConfig::luf().with_three_inputs());
        let report = run(&ts, &spec, &mut s).unwrap();
        let total: usize = report.per_gpu.iter().map(|g| g.tasks).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn opti_matches_exhaustive_completion() {
        let ts = gemm_2d(8);
        let item = ts.data_size(DataId(0));
        let spec = PlatformSpec::v100(1).with_memory(6 * item);
        let mut opti = DartsScheduler::new(DartsConfig::luf().with_opti());
        let report = run(&ts, &spec, &mut opti).unwrap();
        assert_eq!(report.per_gpu[0].tasks, 64);
    }

    #[test]
    fn threshold_still_completes() {
        let ts = gemm_2d(8);
        let item = ts.data_size(DataId(0));
        let spec = PlatformSpec::v100(1).with_memory(6 * item);
        let mut s = DartsScheduler::new(DartsConfig::luf().with_threshold(3));
        let report = run(&ts, &spec, &mut s).unwrap();
        assert_eq!(report.per_gpu[0].tasks, 64);
    }

    #[test]
    fn deterministic_per_seed() {
        let ts = gemm_2d(6);
        let spec = PlatformSpec::v100(2);
        let run1 = run(&ts, &spec, &mut DartsScheduler::new(DartsConfig::luf().with_seed(5)))
            .unwrap();
        let run2 = run(&ts, &spec, &mut DartsScheduler::new(DartsConfig::luf().with_seed(5)))
            .unwrap();
        assert_eq!(run1.makespan, run2.makespan);
        assert_eq!(run1.total_loads, run2.total_loads);
    }

    #[test]
    fn fenwick_select_matches_linear_scan() {
        let mut f = FenwickSet::full(10);
        f.remove(0);
        f.remove(4);
        f.remove(9);
        let members: Vec<usize> = vec![1, 2, 3, 5, 6, 7, 8];
        for (k, &m) in members.iter().enumerate() {
            assert_eq!(f.select(k as u32), m);
        }
        f.insert(4);
        assert_eq!(f.select(3), 4);
    }

    #[test]
    fn useful_index_tracks_argmax_under_churn() {
        let mut u = UsefulIndex::new(10, true);
        let mut tie = Vec::new();
        u.insert(3, 1);
        u.insert(7, 2);
        u.insert(1, 2);
        assert_eq!(u.max_n, 2);
        u.argmax_sorted(&mut tie);
        assert_eq!(tie, vec![1, 7], "argmax tie set in ascending id order");
        u.reposition(3, 1, 3);
        assert_eq!(u.max_n, 3);
        u.argmax_sorted(&mut tie);
        assert_eq!(tie, vec![3]);
        u.remove(3, 3);
        assert_eq!(u.max_n, 2);
        u.reposition(7, 2, 0);
        u.reposition(1, 2, 1);
        assert_eq!(u.max_n, 1);
        u.argmax_sorted(&mut tie);
        assert_eq!(tie, vec![1]);
        assert_eq!(u.all.iter().copied().collect::<Vec<_>>(), vec![1]);
        u.remove(1, 1);
        assert!(u.is_empty());
    }
}
