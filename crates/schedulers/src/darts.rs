//! DARTS — Data-Aware Reactive Task Scheduling (Algorithm 5) with the LUF
//! (Least Used in the Future) eviction policy (Algorithm 6), §IV-D.
//!
//! DARTS inverts the usual scheduling question: instead of choosing a task
//! and fetching its data, it chooses the **data** whose load enables the
//! most "free" tasks — tasks all of whose other inputs are already on the
//! GPU — and reserves those tasks (`plannedTasks_k`). Tie-breaks are
//! randomized so concurrent GPUs rarely compete for the same data.
//!
//! Variants from the paper:
//! * **LUF eviction** — evict a data item unused by the committed
//!   `taskBuffer_k`, with the fewest uses in `plannedTasks_k`; fall back
//!   to Belady's rule on `taskBuffer_k`;
//! * **3inputs** — when no single data frees a task, pick a data belonging
//!   to the most "one more load" pairs instead of a random task;
//! * **OPTI** — stop the candidate scan at the first data enabling ≥ 1
//!   free task (bounds the scheduling time on huge task sets);
//! * **threshold** — cap the number of candidate data examined per refill.

use memsched_model::{DataId, GpuId, TaskId, TaskSet};
use memsched_platform::{PlatformSpec, RuntimeView, Scheduler};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// Eviction policy used by DARTS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DartsEviction {
    /// The runtime default (StarPU-style LRU).
    Lru,
    /// Least Used in the Future (Algorithm 6).
    Luf,
}

/// Configuration of [`DartsScheduler`].
#[derive(Clone, Debug)]
pub struct DartsConfig {
    /// Eviction policy.
    pub eviction: DartsEviction,
    /// Enable the 3inputs fallback.
    pub three_inputs: bool,
    /// Enable the OPTI early-exit scan.
    pub opti: bool,
    /// Cap on the number of candidate data examined per refill.
    pub threshold: Option<usize>,
    /// Seed for randomized tie-breaking.
    pub seed: u64,
}

impl Default for DartsConfig {
    fn default() -> Self {
        Self {
            eviction: DartsEviction::Luf,
            three_inputs: false,
            opti: false,
            threshold: None,
            seed: 0xDA27,
        }
    }
}

impl DartsConfig {
    /// Plain DARTS with LRU eviction (the "DARTS" curves of the paper).
    pub fn lru() -> Self {
        Self {
            eviction: DartsEviction::Lru,
            ..Self::default()
        }
    }

    /// DARTS+LUF (the paper's headline configuration).
    pub fn luf() -> Self {
        Self::default()
    }

    /// Builder: enable 3inputs.
    pub fn with_three_inputs(mut self) -> Self {
        self.three_inputs = true;
        self
    }

    /// Builder: enable OPTI.
    pub fn with_opti(mut self) -> Self {
        self.opti = true;
        self
    }

    /// Builder: set the candidate threshold.
    pub fn with_threshold(mut self, threshold: usize) -> Self {
        self.threshold = Some(threshold.max(1));
        self
    }

    /// Builder: set the tie-break seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The DARTS scheduler.
pub struct DartsScheduler {
    cfg: DartsConfig,
    rng: StdRng,
    /// Per GPU: the data this GPU has not (knowingly) loaded yet.
    data_not_in_mem: Vec<Vec<bool>>,
    /// Per GPU: planned (reserved) tasks, popped front-first.
    planned: Vec<VecDeque<TaskId>>,
    /// Task state: 0 = unallocated, 1 = planned/running, 2 = done.
    task_state: Vec<u8>,
    /// Number of tasks not yet planned or done.
    unallocated: usize,
    /// Number of tasks not yet done (planned or not).
    unfinished: usize,
}

const FREE: u8 = 0;
const TAKEN: u8 = 1;
const DONE: u8 = 2;

impl DartsScheduler {
    /// Build with the given configuration.
    pub fn new(cfg: DartsConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            rng,
            data_not_in_mem: Vec::new(),
            planned: Vec::new(),
            task_state: Vec::new(),
            unallocated: 0,
            unfinished: 0,
        }
    }

    /// Number of free (unallocated, unfinished) tasks enabled by loading
    /// `d` on `gpu`: tasks consuming `d` whose other inputs are all
    /// resident (or already in flight).
    fn n_free(&self, ts: &TaskSet, view: &RuntimeView<'_>, gpu: GpuId, d: DataId) -> usize {
        ts.consumer_ids(d)
            .filter(|&t| self.task_state[t.index()] == FREE)
            .filter(|&t| {
                ts.input_ids(t)
                    .all(|i| i == d || view.is_resident_or_loading(gpu, i))
            })
            .count()
    }

    /// Number of unprocessed (not DONE) tasks depending on `d` — the
    /// tie-break criterion of Algorithm 5, line 9.
    fn n_unprocessed(&self, ts: &TaskSet, d: DataId) -> usize {
        ts.consumer_ids(d)
            .filter(|&t| self.task_state[t.index()] != DONE)
            .count()
    }

    /// Fill `plannedTasks_gpu` by selecting the best data to load
    /// (Algorithm 5, lines 4–11). Returns true if tasks were planned.
    fn refill(&mut self, ts: &TaskSet, view: &RuntimeView<'_>, gpu: GpuId) -> bool {
        let g = gpu.index();
        let mut nmax = 0usize;
        let mut candidates: Vec<DataId> = Vec::new();
        let mut useful = 0usize;
        for di in 0..ts.num_data() {
            if !self.data_not_in_mem[g][di] {
                continue;
            }
            let d = DataId::from_usize(di);
            // The threshold variant stops after examining `cap` *useful*
            // candidates (data enabling at least one free task), keeping
            // the best seen so far — bounding the scan like the paper's
            // Figure 8 fix while preserving a reasonable choice.
            if let Some(cap) = self.cfg.threshold {
                if useful >= cap {
                    break;
                }
            }
            let n = self.n_free(ts, view, gpu, d);
            if n > 0 {
                useful += 1;
            }
            if n > nmax {
                nmax = n;
                candidates.clear();
                candidates.push(d);
                if self.cfg.opti {
                    break; // first data enabling at least one task wins
                }
            } else if n == nmax && n > 0 {
                candidates.push(d);
            }
        }
        if nmax == 0 {
            return false;
        }
        // Among equals, prefer the data useful to the most tasks overall;
        // break the remaining ties randomly (Algorithm 5, line 9).
        let best_useful = candidates
            .iter()
            .map(|&d| self.n_unprocessed(ts, d))
            .max()
            .expect("candidates non-empty");
        let finalists: Vec<DataId> = candidates
            .into_iter()
            .filter(|&d| self.n_unprocessed(ts, d) == best_useful)
            .collect();
        let dopt = finalists[self.rng.random_range(0..finalists.len())];

        // Reserve every free task enabled by dopt.
        let free: Vec<TaskId> = ts
            .consumer_ids(dopt)
            .filter(|&t| self.task_state[t.index()] == FREE)
            .filter(|&t| {
                ts.input_ids(t)
                    .all(|i| i == dopt || view.is_resident_or_loading(gpu, i))
            })
            .collect();
        for &t in &free {
            self.task_state[t.index()] = TAKEN;
            self.unallocated -= 1;
            self.planned[g].push_back(t);
        }
        self.data_not_in_mem[g][dopt.index()] = false;
        !free.is_empty()
    }

    /// The 3inputs fallback: find the data `D` maximizing the number of
    /// free tasks that need `D` plus exactly one other unloaded data, and
    /// return one such task.
    fn three_inputs_pick(
        &mut self,
        ts: &TaskSet,
        view: &RuntimeView<'_>,
        gpu: GpuId,
    ) -> Option<TaskId> {
        let g = gpu.index();
        let mut best: Option<(usize, DataId)> = None;
        let mut useful = 0usize;
        for di in 0..ts.num_data() {
            if !self.data_not_in_mem[g][di] {
                continue;
            }
            if let Some(cap) = self.cfg.threshold {
                if useful >= cap {
                    break;
                }
            }
            let d = DataId::from_usize(di);
            let n = ts
                .consumer_ids(d)
                .filter(|&t| self.task_state[t.index()] == FREE)
                .filter(|&t| {
                    ts.input_ids(t)
                        .filter(|&i| i != d && !view.is_resident_or_loading(gpu, i))
                        .count()
                        == 1
                })
                .count();
            if n > 0 {
                useful += 1;
                if best.is_none_or(|(bn, _)| n > bn) {
                    best = Some((n, d));
                    if self.cfg.opti {
                        break;
                    }
                }
            }
        }
        let (_, d) = best?;
        ts.consumer_ids(d)
            .find(|&t| {
                self.task_state[t.index()] == FREE
                    && ts
                        .input_ids(t)
                        .filter(|&i| i != d && !view.is_resident_or_loading(gpu, i))
                        .count()
                        == 1
            })
            .inspect(|&t| self.take_task(ts, gpu, t))
    }

    /// Allocate `t` to `gpu` outside of `plannedTasks` (fallback paths):
    /// its inputs leave `dataNotInMem_gpu` (Algorithm 5, line 13).
    fn take_task(&mut self, ts: &TaskSet, gpu: GpuId, t: TaskId) {
        self.task_state[t.index()] = TAKEN;
        self.unallocated -= 1;
        for d in ts.input_ids(t) {
            self.data_not_in_mem[gpu.index()][d.index()] = false;
        }
    }

    /// Number of tasks not yet completed (planned or not).
    pub fn remaining(&self) -> usize {
        self.unfinished
    }

    /// A uniformly random unallocated task.
    fn random_task(&mut self) -> Option<TaskId> {
        if self.unallocated == 0 {
            return None;
        }
        // Reservoir-free draw: pick the n-th free task.
        let nth = self.rng.random_range(0..self.unallocated);
        let mut seen = 0;
        for (i, &s) in self.task_state.iter().enumerate() {
            if s == FREE {
                if seen == nth {
                    return Some(TaskId::from_usize(i));
                }
                seen += 1;
            }
        }
        None
    }
}

impl Scheduler for DartsScheduler {
    fn name(&self) -> String {
        let mut name = String::from("DARTS");
        if self.cfg.eviction == DartsEviction::Luf {
            name.push_str("+LUF");
        }
        if self.cfg.opti {
            name.push_str("+OPTI");
        }
        if self.cfg.threshold.is_some() {
            name.push_str("+threshold");
        }
        if self.cfg.three_inputs {
            name.push_str("-3inputs");
        }
        name
    }

    fn prepare(&mut self, ts: &TaskSet, spec: &PlatformSpec) {
        let k = spec.num_gpus;
        self.data_not_in_mem = vec![vec![true; ts.num_data()]; k];
        self.planned = vec![VecDeque::new(); k];
        self.task_state = vec![FREE; ts.num_tasks()];
        self.unallocated = ts.num_tasks();
        self.unfinished = ts.num_tasks();
    }

    fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
        let ts = view.task_set();
        let g = gpu.index();
        if let Some(t) = self.planned[g].pop_front() {
            return Some(t);
        }
        if self.refill(ts, view, gpu) {
            return self.planned[g].pop_front();
        }
        // No data frees a task (e.g. the very beginning of the run).
        if self.cfg.three_inputs {
            if let Some(t) = self.three_inputs_pick(ts, view, gpu) {
                return Some(t);
            }
        }
        let t = self.random_task()?;
        self.take_task(ts, gpu, t);
        Some(t)
    }

    fn choose_victim(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<DataId> {
        if self.cfg.eviction != DartsEviction::Luf {
            return None; // defer to the runtime's LRU
        }
        let ts = view.task_set();
        let g = gpu.index();
        let buffer = view.task_buffer(gpu);

        // nb(D): uses in taskBuffer; np(D): uses in plannedTasks.
        let mut best_free: Option<(usize, DataId)> = None; // (np, D) with nb == 0
        let mut best_belady: Option<(usize, DataId)> = None; // furthest next use
        for d in view.resident(gpu) {
            if view.is_pinned(gpu, d) {
                continue;
            }
            let nb = buffer
                .iter()
                .filter(|&&t| ts.inputs(t).binary_search(&d.0).is_ok())
                .count();
            if nb == 0 {
                let np = self.planned[g]
                    .iter()
                    .filter(|&&t| ts.inputs(t).binary_search(&d.0).is_ok())
                    .count();
                if best_free.is_none_or(|(bnp, _)| np < bnp) {
                    best_free = Some((np, d));
                }
            } else {
                // Next use position in the buffer (Belady on committed tasks).
                let next = buffer
                    .iter()
                    .position(|&t| ts.inputs(t).binary_search(&d.0).is_ok())
                    .unwrap_or(usize::MAX);
                if best_belady.is_none_or(|(bn, _)| next > bn) {
                    best_belady = Some((next, d));
                }
            }
        }
        let victim = best_free.map(|(_, d)| d).or(best_belady.map(|(_, d)| d))?;
        Some(victim)
    }

    fn on_task_complete(&mut self, _gpu: GpuId, task: TaskId, _view: &RuntimeView<'_>) {
        if self.task_state[task.index()] != DONE {
            self.task_state[task.index()] = DONE;
            self.unfinished -= 1;
        }
    }

    fn on_data_loaded(&mut self, gpu: GpuId, data: DataId, _view: &RuntimeView<'_>) {
        // The data is now in memory whatever the reason it was fetched.
        self.data_not_in_mem[gpu.index()][data.index()] = false;
    }

    fn on_data_evicted(&mut self, gpu: GpuId, data: DataId, view: &RuntimeView<'_>) {
        let ts = view.task_set();
        let g = gpu.index();
        self.data_not_in_mem[g][data.index()] = true;
        // Algorithm 6, line 8: release planned tasks that depended on the
        // evicted data so they can be re-planned (here or elsewhere).
        let dependents: Vec<TaskId> = self.planned[g]
            .iter()
            .copied()
            .filter(|&t| ts.inputs(t).binary_search(&data.0).is_ok())
            .collect();
        if !dependents.is_empty() {
            self.planned[g].retain(|t| !dependents.contains(t));
            for t in dependents {
                debug_assert_eq!(self.task_state[t.index()], TAKEN);
                self.task_state[t.index()] = FREE;
                self.unallocated += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsched_model::figure1_example;
    use memsched_platform::run;
    use memsched_workloads::{gemm_2d, gemm_2d_random, gemm_3d};

    #[test]
    fn names_encode_variants() {
        assert_eq!(DartsScheduler::new(DartsConfig::lru()).name(), "DARTS");
        assert_eq!(DartsScheduler::new(DartsConfig::luf()).name(), "DARTS+LUF");
        assert_eq!(
            DartsScheduler::new(DartsConfig::luf().with_opti().with_three_inputs()).name(),
            "DARTS+LUF+OPTI-3inputs"
        );
        assert_eq!(
            DartsScheduler::new(DartsConfig::luf().with_threshold(10)).name(),
            "DARTS+LUF+threshold"
        );
    }

    #[test]
    fn completes_figure1_with_tight_memory() {
        let ts = figure1_example();
        let spec = PlatformSpec::v100(1).with_memory(2).with_pipeline_depth(2);
        let mut s = DartsScheduler::new(DartsConfig::luf());
        let report = run(&ts, &spec, &mut s).unwrap();
        assert_eq!(report.per_gpu[0].tasks, 9);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn near_optimal_loads_when_memory_fits() {
        let ts = gemm_2d(6);
        let spec = PlatformSpec::v100(1);
        let mut s = DartsScheduler::new(DartsConfig::luf());
        let report = run(&ts, &spec, &mut s).unwrap();
        assert_eq!(report.total_loads, 12, "each data loaded exactly once");
    }

    #[test]
    fn luf_no_worse_than_lru_under_pressure() {
        let ts = gemm_2d(10);
        let item = ts.data_size(DataId(0));
        let spec = PlatformSpec::v100(1).with_memory(6 * item);
        let mut lru = DartsScheduler::new(DartsConfig::lru());
        let mut luf = DartsScheduler::new(DartsConfig::luf());
        let loads_lru = run(&ts, &spec, &mut lru).unwrap().total_loads;
        let loads_luf = run(&ts, &spec, &mut luf).unwrap().total_loads;
        assert!(
            loads_luf <= loads_lru,
            "LUF {loads_luf} vs LRU {loads_lru}"
        );
    }

    #[test]
    fn beats_eager_on_randomized_order() {
        // The headline Figure 9 effect at miniature scale: randomized
        // submission order devastates order-dependent schedulers but not
        // DARTS, which picks its own data-driven order.
        let ts = gemm_2d_random(10, 3);
        let item = ts.data_size(DataId(0));
        let spec = PlatformSpec::v100(2).with_memory(6 * item);
        let mut darts = DartsScheduler::new(DartsConfig::luf());
        let mut eager = crate::eager::EagerScheduler::new();
        let darts_loads = run(&ts, &spec, &mut darts).unwrap().total_loads;
        let eager_loads = run(&ts, &spec, &mut eager).unwrap().total_loads;
        assert!(
            darts_loads < eager_loads,
            "DARTS {darts_loads} vs EAGER {eager_loads}"
        );
    }

    #[test]
    fn multi_gpu_splits_work_without_conflicts() {
        let ts = gemm_2d(8);
        let spec = PlatformSpec::v100(2);
        let mut s = DartsScheduler::new(DartsConfig::luf());
        let report = run(&ts, &spec, &mut s).unwrap();
        let total: usize = report.per_gpu.iter().map(|g| g.tasks).sum();
        assert_eq!(total, 64);
        assert!(report.per_gpu.iter().all(|g| g.tasks > 10), "both GPUs work");
    }

    #[test]
    fn three_inputs_handles_3d_product() {
        let ts = gemm_3d(4);
        let item = ts.data_size(DataId(0));
        let spec = PlatformSpec::v100(2).with_memory(8 * item);
        let mut s = DartsScheduler::new(DartsConfig::luf().with_three_inputs());
        let report = run(&ts, &spec, &mut s).unwrap();
        let total: usize = report.per_gpu.iter().map(|g| g.tasks).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn opti_matches_exhaustive_completion() {
        let ts = gemm_2d(8);
        let item = ts.data_size(DataId(0));
        let spec = PlatformSpec::v100(1).with_memory(6 * item);
        let mut opti = DartsScheduler::new(DartsConfig::luf().with_opti());
        let report = run(&ts, &spec, &mut opti).unwrap();
        assert_eq!(report.per_gpu[0].tasks, 64);
    }

    #[test]
    fn threshold_still_completes() {
        let ts = gemm_2d(8);
        let item = ts.data_size(DataId(0));
        let spec = PlatformSpec::v100(1).with_memory(6 * item);
        let mut s = DartsScheduler::new(DartsConfig::luf().with_threshold(3));
        let report = run(&ts, &spec, &mut s).unwrap();
        assert_eq!(report.per_gpu[0].tasks, 64);
    }

    #[test]
    fn deterministic_per_seed() {
        let ts = gemm_2d(6);
        let spec = PlatformSpec::v100(2);
        let run1 = run(&ts, &spec, &mut DartsScheduler::new(DartsConfig::luf().with_seed(5)))
            .unwrap();
        let run2 = run(&ts, &spec, &mut DartsScheduler::new(DartsConfig::luf().with_seed(5)))
            .unwrap();
        assert_eq!(run1.makespan, run2.makespan);
        assert_eq!(run1.total_loads, run2.total_loads);
    }
}
