//! # memsched-schedulers
//!
//! All five scheduling strategies evaluated in the paper, implemented
//! against the pull-mode [`Scheduler`](memsched_platform::Scheduler)
//! interface of `memsched-platform`:
//!
//! * [`EagerScheduler`] — the shared-queue baseline (§V-A);
//! * [`DmdaScheduler`] — StarPU's DMDA / DMDAR (Algorithms 1–2, §IV-A);
//! * [`HmetisRScheduler`] — hypergraph partitioning + Ready + stealing
//!   (Algorithm 3, §IV-B), using `memsched-hypergraph` in place of hMETIS;
//! * [`HfpScheduler`] — (m)HFP hierarchical fair packing (Algorithm 4,
//!   §IV-C);
//! * [`DartsScheduler`] — the paper's contribution: Data-Aware Reactive
//!   Task Scheduling with the LUF eviction policy and its 3inputs / OPTI /
//!   threshold variants (Algorithms 5–6, §IV-D);
//! * [`RouterScheduler`] — the residency-aware request router for
//!   shared-prefix serving workloads (Preble-style `recomp + α·load`
//!   scoring over the engine's residency cache).

#![warn(missing_docs)]

mod darts;
mod dmda;
mod eager;
mod hfp;
mod hmetis_r;
mod ready;
mod router;
mod stealing;

pub use darts::{DartsConfig, DartsEviction, DartsScheduler};
pub use dmda::DmdaScheduler;
pub use eager::EagerScheduler;
pub use hfp::{pack as hfp_pack, pack_with as hfp_pack_with, HfpScheduler, PackConfig};
pub use hmetis_r::{HmetisRScheduler, PartitionerOptions};
pub use router::{RouterScheduler, DEFAULT_ALPHA_MILLI};
pub use ready::{ready_pick, DEFAULT_READY_WINDOW};
#[cfg(feature = "naive")]
pub use ready::ready_pick_scan;
pub use stealing::StealingQueues;

use memsched_platform::Scheduler;

/// Every named scheduler configuration used in the paper's figures, for
/// easy construction by the harness and benches.
#[derive(Clone, Debug, PartialEq)]
pub enum NamedScheduler {
    /// Shared-queue baseline.
    Eager,
    /// DMDA without Ready.
    Dmda,
    /// DMDAR (the paper's StarPU reference point).
    Dmdar,
    /// hMETIS+R with the paper's partitioner settings.
    HmetisR,
    /// mHFP.
    Mhfp,
    /// mHFP with the paper's original quadratic packing in `prepare` —
    /// identical queues and runtime decisions, paper-scale prepare wall
    /// time (`--paper-timing` in the figure harness).
    #[cfg(feature = "naive")]
    MhfpPaperTiming,
    /// DARTS with LRU eviction.
    Darts,
    /// DARTS with LUF eviction.
    DartsLuf,
    /// DARTS+LUF with the 3inputs fallback.
    DartsLuf3,
    /// DARTS+LUF with OPTI.
    DartsLufOpti,
    /// DARTS+LUF with OPTI and 3inputs.
    DartsLufOpti3,
    /// DARTS+LUF with a candidate threshold.
    DartsLufThreshold(usize),
    /// Residency-aware request router (`recomp_bytes + α·load`).
    Router,
}

impl NamedScheduler {
    /// Instantiate the scheduler.
    ///
    /// The trait object is `Send` so a built scheduler can be handed to a
    /// harness worker thread; each engine run still drives its scheduler
    /// from a single thread (the engine is sequential by design).
    pub fn build(&self) -> Box<dyn Scheduler + Send> {
        match *self {
            NamedScheduler::Eager => Box::new(EagerScheduler::new()),
            NamedScheduler::Dmda => Box::new(DmdaScheduler::dmda()),
            NamedScheduler::Dmdar => Box::new(DmdaScheduler::dmdar()),
            NamedScheduler::HmetisR => Box::new(HmetisRScheduler::new()),
            NamedScheduler::Mhfp => Box::new(HfpScheduler::new()),
            #[cfg(feature = "naive")]
            NamedScheduler::MhfpPaperTiming => Box::new(HfpScheduler::new().with_naive_pack()),
            NamedScheduler::Darts => Box::new(DartsScheduler::new(DartsConfig::lru())),
            NamedScheduler::DartsLuf => Box::new(DartsScheduler::new(DartsConfig::luf())),
            NamedScheduler::DartsLuf3 => {
                Box::new(DartsScheduler::new(DartsConfig::luf().with_three_inputs()))
            }
            NamedScheduler::DartsLufOpti => {
                Box::new(DartsScheduler::new(DartsConfig::luf().with_opti()))
            }
            NamedScheduler::DartsLufOpti3 => Box::new(DartsScheduler::new(
                DartsConfig::luf().with_opti().with_three_inputs(),
            )),
            NamedScheduler::DartsLufThreshold(cap) => {
                Box::new(DartsScheduler::new(DartsConfig::luf().with_threshold(cap)))
            }
            NamedScheduler::Router => Box::new(RouterScheduler::new()),
        }
    }

    /// The display name (matches the paper's legends).
    pub fn label(&self) -> String {
        self.build().name()
    }
}

// Compile-time audit: every concrete scheduler must stay `Send` so the
// parallel sweep harness can move built schedulers onto worker threads.
// (None needs `Sync` — a scheduler is only ever driven by one engine.)
#[allow(dead_code)]
fn _assert_schedulers_send() {
    fn is_send<T: Send>() {}
    is_send::<EagerScheduler>();
    is_send::<DmdaScheduler>();
    is_send::<HmetisRScheduler>();
    is_send::<HfpScheduler>();
    is_send::<DartsScheduler>();
    is_send::<RouterScheduler>();
    is_send::<Box<dyn Scheduler + Send>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsched_platform::{run, PlatformSpec};
    use memsched_workloads::gemm_2d;

    #[test]
    fn every_named_scheduler_completes_a_small_run() {
        let ts = gemm_2d(4);
        let spec = PlatformSpec::v100(2);
        let all = [
            NamedScheduler::Eager,
            NamedScheduler::Dmda,
            NamedScheduler::Dmdar,
            NamedScheduler::HmetisR,
            NamedScheduler::Mhfp,
            NamedScheduler::Darts,
            NamedScheduler::DartsLuf,
            NamedScheduler::DartsLuf3,
            NamedScheduler::DartsLufOpti,
            NamedScheduler::DartsLufOpti3,
            NamedScheduler::DartsLufThreshold(4),
            NamedScheduler::Router,
        ];
        for named in all {
            let mut sched = named.build();
            let report = run(&ts, &spec, sched.as_mut())
                .unwrap_or_else(|e| panic!("{named:?} failed: {e}"));
            let total: usize = report.per_gpu.iter().map(|g| g.tasks).sum();
            assert_eq!(total, 16, "{named:?} lost tasks");
        }
    }
}
