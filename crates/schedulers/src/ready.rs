//! The Ready reordering heuristic (Algorithm 2 / §IV-A), shared by DMDAR,
//! hMETIS+R and mHFP: among the tasks allocated to a GPU, run first the
//! one requiring the fewest data transfers right now.

use memsched_model::{GpuId, TaskId};
use memsched_platform::RuntimeView;

/// How many queued tasks Ready may inspect per pop. The paper notes that
/// Ready "can only reorder a limited number of tasks ahead of the
/// computation"; an unbounded scan would also make each pop `O(m)`.
pub const DEFAULT_READY_WINDOW: usize = 128;

/// Pick the index (within `queue`, scanning at most `window` entries) of
/// the task with the fewest missing input bytes on `gpu`; earliest wins
/// ties, so with everything resident this degrades to FIFO.
///
/// `missing_bytes` is O(1) (served from the engine's missing-input
/// cache), the zero-missing fast path exits before any bookkeeping, and
/// the running minimum is two plain scalars — no `Option` churn in the
/// loop.
pub fn ready_pick(
    queue: &[TaskId],
    gpu: GpuId,
    view: &RuntimeView<'_>,
    window: usize,
) -> Option<usize> {
    let scan = queue.len().min(window.max(1));
    let mut best_i = 0usize;
    let mut best_missing = u64::MAX;
    for (i, &t) in queue.iter().take(scan).enumerate() {
        let missing = view.missing_bytes(gpu, t);
        if missing == 0 {
            return Some(i); // cannot do better than zero transfers
        }
        if missing < best_missing {
            best_missing = missing;
            best_i = i;
        }
    }
    (best_missing != u64::MAX).then_some(best_i)
}

/// Reference implementation of [`ready_pick`] re-walking every task's
/// input list ([`RuntimeView::missing_bytes_scan`]) — the differential
/// baseline for the `naive` configurations.
#[cfg(any(test, feature = "naive"))]
pub fn ready_pick_scan(
    queue: &[TaskId],
    gpu: GpuId,
    view: &RuntimeView<'_>,
    window: usize,
) -> Option<usize> {
    let scan = queue.len().min(window.max(1));
    let mut best: Option<(usize, u64)> = None;
    for (i, &t) in queue.iter().take(scan).enumerate() {
        let missing = view.missing_bytes_scan(gpu, t);
        if missing == 0 {
            return Some(i);
        }
        if best.is_none_or(|(_, b)| missing < b) {
            best = Some((i, missing));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsched_model::{TaskSet, TaskSetBuilder};
    use memsched_platform::{run, PlatformSpec, Scheduler};

    /// Single-GPU scheduler that serves its queue through `ready_pick`.
    struct ReadyFifo {
        queue: Vec<TaskId>,
        window: usize,
    }

    impl Scheduler for ReadyFifo {
        fn name(&self) -> String {
            "ready-fifo".into()
        }
        fn prepare(&mut self, ts: &TaskSet, _: &PlatformSpec) {
            self.queue = ts.tasks().collect();
        }
        fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
            let i = ready_pick(&self.queue, gpu, view, self.window)?;
            Some(self.queue.remove(i))
        }
    }

    /// Tasks: T0 uses D0; T1 uses D1; T2 uses D0 again. With memory for
    /// one item, Ready runs T2 right after T0 to reuse D0.
    fn reuse_set() -> TaskSet {
        let mut b = TaskSetBuilder::new();
        let d0 = b.add_data(100);
        let d1 = b.add_data(100);
        b.add_task(&[d0], 1e6);
        b.add_task(&[d1], 1e6);
        b.add_task(&[d0], 1e6);
        b.build()
    }

    #[test]
    fn ready_reorders_for_residency() {
        let ts = reuse_set();
        let spec = PlatformSpec::v100(1)
            .with_memory(100)
            .with_pipeline_depth(1);
        let mut with_ready = ReadyFifo {
            queue: vec![],
            window: 16,
        };
        let r = run(&ts, &spec, &mut with_ready).unwrap();
        // T0 (load D0), T2 (D0 resident), T1 (load D1): 2 loads total.
        assert_eq!(r.total_loads, 2);

        let mut fifo = ReadyFifo {
            queue: vec![],
            window: 1, // window of 1 == plain FIFO
        };
        let r = run(&ts, &spec, &mut fifo).unwrap();
        // T0, T1, T2 in order: D0, D1, D0 again = 3 loads.
        assert_eq!(r.total_loads, 3);
    }

    /// Like [`ReadyFifo`] but asserting, on every pop, that (a) the fast
    /// implementation agrees with the input-walking reference and (b) an
    /// all-resident window picks index 0 (the FIFO-degradation claim).
    struct AssertFifo {
        queue: Vec<TaskId>,
        window: usize,
        fifo_pops: usize,
        order: Vec<TaskId>,
    }

    impl Scheduler for AssertFifo {
        fn name(&self) -> String {
            "assert-fifo".into()
        }
        fn prepare(&mut self, ts: &TaskSet, _: &PlatformSpec) {
            self.queue = ts.tasks().collect();
        }
        fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
            let i = ready_pick(&self.queue, gpu, view, self.window)?;
            assert_eq!(
                ready_pick_scan(&self.queue, gpu, view, self.window),
                Some(i),
                "fast ready_pick diverged from the scan reference"
            );
            let scan = self.queue.len().min(self.window.max(1));
            if self
                .queue
                .iter()
                .take(scan)
                .all(|&t| view.missing_bytes(gpu, t) == 0)
            {
                assert_eq!(i, 0, "all-resident window must degrade to FIFO");
                self.fifo_pops += 1;
            }
            let t = self.queue.remove(i);
            self.order.push(t);
            Some(t)
        }
    }

    #[test]
    fn all_resident_degrades_to_fifo_at_window_boundaries() {
        // Four tasks all reading the same two items: after the first pop
        // loads D0/D1, every window is all-resident, so Ready must serve
        // the remaining tasks in FIFO order — at a window smaller than,
        // equal to, and larger than the queue.
        let mut b = TaskSetBuilder::new();
        let d0 = b.add_data(10);
        let d1 = b.add_data(10);
        for _ in 0..4 {
            b.add_task(&[d0, d1], 1e6);
        }
        let ts = b.build();
        for window in [1, 2, 4, 5, DEFAULT_READY_WINDOW] {
            let mut s = AssertFifo {
                queue: vec![],
                window,
                fifo_pops: 0,
                order: vec![],
            };
            let spec = PlatformSpec::v100(1).with_pipeline_depth(1);
            run(&ts, &spec, &mut s).unwrap();
            assert!(
                s.fifo_pops >= 3,
                "window {window}: the all-resident case never exercised"
            );
            assert_eq!(
                s.order,
                (0..4).map(TaskId::from_usize).collect::<Vec<_>>(),
                "window {window}: not FIFO order"
            );
        }
    }

    #[test]
    fn window_bounds_the_scan() {
        let ts = reuse_set();
        let spec = PlatformSpec::v100(1)
            .with_memory(100)
            .with_pipeline_depth(1);
        let mut windowed = ReadyFifo {
            queue: vec![],
            window: 2,
        };
        // Window 2 sees T1 and T2 after T0 completes, so it still finds T2.
        let r = run(&ts, &spec, &mut windowed).unwrap();
        assert_eq!(r.total_loads, 2);
    }
}
