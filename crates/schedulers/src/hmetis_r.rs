//! hMETIS+R (Algorithm 3, §IV-B): hypergraph-partition the task set into
//! `K` balanced parts (one per GPU), then serve each part with the Ready
//! reordering and tail-half task stealing.

use crate::ready::DEFAULT_READY_WINDOW;
use crate::stealing::StealingQueues;
use memsched_hypergraph::{partition, partition_clique, Hypergraph, PartitionConfig};
use memsched_model::{GpuId, TaskId, TaskSet};
use memsched_platform::{PlatformSpec, Probe, RuntimeView, Scheduler};

/// The hMETIS+R scheduler.
#[derive(Debug, Default)]
pub struct HmetisRScheduler {
    /// Partitioner settings (`k` is overwritten with the GPU count).
    config: PartitionerOptions,
    queues: Option<StealingQueues>,
    /// Probe kept until `prepare` builds the queues that emit with it.
    probe: Option<Probe>,
    /// Connectivity−1 of the partition (for reports/tests).
    pub partition_cost: u64,
    /// Online mode: per-GPU bitmap of data items referenced by tasks
    /// already routed there, driving the greedy affinity placement.
    assigned_data: Vec<Vec<bool>>,
    /// Online mode flag, set by `prepare_stream`. Batch runs decompose
    /// per bus group (the partition is static and stealing is scoped);
    /// the online affinity router is globally coupled.
    online: bool,
}

/// User-facing knobs of [`HmetisRScheduler`].
#[derive(Clone, Debug)]
pub struct PartitionerOptions {
    /// Random restarts (hMETIS `Nruns`; the paper uses 20).
    pub nruns: usize,
    /// RNG seed.
    pub seed: u64,
    /// Ready scan window.
    pub window: usize,
    /// Enable task stealing (Algorithm 3, line 5).
    pub steal: bool,
    /// Partition the METIS-style clique expansion instead of the
    /// hypergraph — the graph model of Yoo et al. that §IV-B argues
    /// overcounts shared data (ablation).
    pub clique_expansion: bool,
}

impl Default for PartitionerOptions {
    fn default() -> Self {
        Self {
            nruns: 20,
            seed: 0x5eed,
            window: DEFAULT_READY_WINDOW,
            steal: true,
            clique_expansion: false,
        }
    }
}

impl HmetisRScheduler {
    /// Paper-default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Custom configuration.
    pub fn with_options(config: PartitionerOptions) -> Self {
        Self {
            config,
            queues: None,
            probe: None,
            partition_cost: 0,
            assigned_data: Vec::new(),
            online: false,
        }
    }

    /// Build the task hypergraph of §IV-B: one vertex per task (weighted
    /// by flops) and one hyperedge per data item spanning its consumers.
    pub fn build_hypergraph(ts: &TaskSet) -> Hypergraph {
        let mut nets = Vec::new();
        let mut nweights = Vec::new();
        for d in ts.data() {
            let pins = ts.consumers(d);
            if pins.len() >= 2 {
                nets.push(pins.to_vec());
                nweights.push(ts.data_size(d).max(1));
            }
        }
        // Scale flops into integer weights; all-equal tasks get weight 1.
        let min_flops = ts
            .tasks()
            .map(|t| ts.flops(t))
            .fold(f64::INFINITY, f64::min)
            .max(1.0);
        let vweights: Vec<u64> = ts
            .tasks()
            .map(|t| (ts.flops(t) / min_flops).round().max(1.0) as u64)
            .collect();
        Hypergraph::new(ts.num_tasks(), nets, vweights, nweights)
    }
}

impl Scheduler for HmetisRScheduler {
    fn name(&self) -> String {
        if self.config.clique_expansion {
            "METIS+R".into()
        } else {
            "hMETIS+R".into()
        }
    }

    fn prepare(&mut self, ts: &TaskSet, spec: &PlatformSpec) {
        let k = spec.num_gpus;
        let hg = Self::build_hypergraph(ts);
        let parts = if k == 1 {
            vec![0u32; ts.num_tasks()]
        } else {
            let cfg = PartitionConfig::for_parts(k)
                .with_nruns(self.config.nruns)
                .with_seed(self.config.seed);
            let p = if self.config.clique_expansion {
                partition_clique(&hg, &cfg)
            } else {
                partition(&hg, &cfg)
            };
            self.partition_cost = p.quality.connectivity_minus_one;
            p.parts
        };
        let mut queues: Vec<Vec<TaskId>> = vec![Vec::new(); k];
        for t in ts.tasks() {
            queues[parts[t.index()] as usize].push(t);
        }
        let mut sq = StealingQueues::new(queues, self.config.window, self.config.steal)
            .with_groups((0..k).map(|g| spec.bus_of(g)).collect());
        if let Some(p) = &self.probe {
            sq.attach_probe(p.clone());
        }
        self.queues = Some(sq);
        self.online = false;
    }

    fn prepare_stream(&mut self, ts: &TaskSet, spec: &PlatformSpec) {
        // A global partition needs the whole hypergraph; online we fall
        // back to greedy affinity routing (hMETIS-style cut avoidance on
        // the visible horizon) over empty stealing queues.
        let k = spec.num_gpus;
        self.partition_cost = 0;
        self.online = true;
        self.assigned_data = vec![vec![false; ts.num_data()]; k];
        let mut sq = StealingQueues::new(
            vec![Vec::new(); k],
            self.config.window,
            self.config.steal,
        );
        if let Some(p) = &self.probe {
            sq.attach_probe(p.clone());
        }
        self.queues = Some(sq);
    }

    fn on_task_arrival(&mut self, task: TaskId, view: &RuntimeView<'_>) {
        // Route the arrival to the alive GPU whose assigned horizon
        // shares the most input bytes with it (ties → shortest queue,
        // then lowest index), mirroring the partitioner's objective of
        // keeping each data item's consumers on one GPU.
        let ts = view.task_set();
        let q = self.queues.as_mut().expect("prepare_stream() must run first");
        let mut best: Option<(usize, u64, usize)> = None;
        for (g, seen) in self.assigned_data.iter().enumerate() {
            if !view.is_alive(GpuId(g as u32)) {
                continue;
            }
            let affinity: u64 = ts
                .input_ids(task)
                .filter(|&d| seen[d.index()])
                .map(|d| ts.data_size(d))
                .sum();
            let len = q.len(GpuId(g as u32));
            let better = match best {
                None => true,
                Some((_, ba, blen)) => affinity > ba || (affinity == ba && len < blen),
            };
            if better {
                best = Some((g, affinity, len));
            }
        }
        // With every GPU dead the engine aborts; park on GPU 0.
        let g = best.map_or(0, |(g, _, _)| g);
        q.push(GpuId(g as u32), task);
        for d in ts.input_ids(task) {
            self.assigned_data[g][d.index()] = true;
        }
    }

    fn attach_probe(&mut self, probe: Probe) {
        if let Some(q) = self.queues.as_mut() {
            q.attach_probe(probe.clone());
        }
        self.probe = Some(probe);
    }

    fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
        self.queues
            .as_mut()
            .expect("prepare() must run first")
            .pop(gpu, view)
    }

    fn on_gpu_failed(&mut self, gpu: GpuId, lost: &[TaskId], view: &RuntimeView<'_>) {
        // The dead GPU's partition tail folds into the survivors through
        // the ordinary stealing machinery.
        if let Some(q) = self.queues.as_mut() {
            q.return_tasks(gpu, lost, view);
        }
    }

    fn decomposes_per_group(&self) -> bool {
        // Batch only: the partition is fixed in `prepare` and every
        // runtime interaction (Ready pops, steals, fault re-homing) is
        // scoped to the bus group by the grouped stealing queues. The
        // online affinity router compares queue depths across all GPUs.
        !self.online
    }

    fn group_task_counts(&self, groups: &[usize], num_groups: usize) -> Option<Vec<usize>> {
        if self.online {
            return None;
        }
        self.queues
            .as_ref()
            .map(|q| q.group_task_counts(groups, num_groups))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsched_platform::run;
    use memsched_workloads::gemm_2d;

    #[test]
    fn hypergraph_mirrors_task_set() {
        let ts = gemm_2d(4);
        let hg = HmetisRScheduler::build_hypergraph(&ts);
        assert_eq!(hg.num_vertices(), 16);
        assert_eq!(hg.num_nets(), 8); // 4 rows + 4 columns
        assert_eq!(hg.num_pins(), 32);
    }

    #[test]
    fn partition_balances_and_runs_everything() {
        let ts = gemm_2d(6);
        let spec = PlatformSpec::v100(2);
        let mut sched = HmetisRScheduler::with_options(PartitionerOptions {
            nruns: 4,
            ..Default::default()
        });
        let report = run(&ts, &spec, &mut sched).unwrap();
        let total: usize = report.per_gpu.iter().map(|g| g.tasks).sum();
        assert_eq!(total, 36);
        // Stealing keeps the split near-even.
        assert!(report.max_load() <= 24, "max load {}", report.max_load());
    }

    #[test]
    fn partition_has_low_cut_on_grid() {
        let ts = gemm_2d(8);
        let spec = PlatformSpec::v100(2);
        let mut sched = HmetisRScheduler::with_options(PartitionerOptions {
            nruns: 8,
            ..Default::default()
        });
        sched.prepare(&ts, &spec);
        // Nets are weighted by data size; a perfect row/column split cuts
        // one family of 8 nets. Allow 2x slack.
        let item = ts.data_size(memsched_model::DataId(0));
        assert!(
            sched.partition_cost <= 16 * item,
            "cut = {} items",
            sched.partition_cost as f64 / item as f64
        );
    }

    #[test]
    fn beats_eager_under_memory_pressure() {
        let ts = gemm_2d(10);
        let item = ts.data_size(memsched_model::DataId(0));
        let spec = PlatformSpec::v100(2).with_memory(6 * item);
        let mut hm = HmetisRScheduler::with_options(PartitionerOptions {
            nruns: 4,
            ..Default::default()
        });
        let mut eager = crate::eager::EagerScheduler::new();
        let hm_loads = run(&ts, &spec, &mut hm).unwrap().total_loads;
        let eager_loads = run(&ts, &spec, &mut eager).unwrap().total_loads;
        assert!(
            hm_loads <= eager_loads,
            "hMETIS+R {hm_loads} vs EAGER {eager_loads}"
        );
    }

    #[test]
    fn clique_expansion_variant_runs_and_is_labelled() {
        let ts = gemm_2d(6);
        let spec = PlatformSpec::v100(2);
        let mut sched = HmetisRScheduler::with_options(PartitionerOptions {
            nruns: 2,
            clique_expansion: true,
            ..Default::default()
        });
        assert_eq!(sched.name(), "METIS+R");
        let report = run(&ts, &spec, &mut sched).unwrap();
        assert_eq!(report.per_gpu.iter().map(|g| g.tasks).sum::<usize>(), 36);
    }

    #[test]
    fn single_gpu_degenerates_to_ready_fifo() {
        let ts = gemm_2d(4);
        let spec = PlatformSpec::v100(1);
        let mut sched = HmetisRScheduler::new();
        let report = run(&ts, &spec, &mut sched).unwrap();
        assert_eq!(report.per_gpu[0].tasks, 16);
    }
}
