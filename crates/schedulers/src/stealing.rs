//! Task stealing shared by hMETIS+R and mHFP (§IV-B, §IV-C): when a GPU
//! has exhausted its allocated tasks while others still have work, it
//! steals **half of the remaining tasks of the most loaded GPU, taken from
//! the tail of its list**.

use crate::ready::ready_pick;
use memsched_model::{GpuId, TaskId};
use memsched_platform::RuntimeView;

/// Per-GPU task queues with Ready service and tail-half stealing.
#[derive(Clone, Debug, Default)]
pub struct StealingQueues {
    queues: Vec<Vec<TaskId>>,
    /// Ready scan window.
    window: usize,
    /// Whether stealing is enabled (for ablation benches).
    steal: bool,
    /// Number of successful steals (for reporting/tests).
    pub steals: u64,
}

impl StealingQueues {
    /// Build from per-GPU queues.
    pub fn new(queues: Vec<Vec<TaskId>>, window: usize, steal: bool) -> Self {
        Self {
            queues,
            window: window.max(1),
            steal,
            steals: 0,
        }
    }

    /// Remaining tasks on `gpu`.
    pub fn len(&self, gpu: GpuId) -> usize {
        self.queues[gpu.index()].len()
    }

    /// True when every queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(Vec::is_empty)
    }

    /// Pop the next task for `gpu`: Ready pick from the local queue,
    /// stealing half of the most loaded GPU's tail first if empty.
    pub fn pop(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
        let g = gpu.index();
        if self.queues[g].is_empty() && self.steal {
            self.try_steal(g);
        }
        let q = &mut self.queues[g];
        if q.is_empty() {
            return None;
        }
        let i = ready_pick(q, gpu, view, self.window)?;
        Some(q.remove(i))
    }

    /// Steal half (rounded down, at least one when possible) of the tail
    /// of the most loaded queue into queue `g`.
    fn try_steal(&mut self, g: usize) {
        let victim = (0..self.queues.len())
            .filter(|&v| v != g)
            .max_by_key(|&v| self.queues[v].len())
            .filter(|&v| !self.queues[v].is_empty());
        let Some(v) = victim else { return };
        let vlen = self.queues[v].len();
        let take = (vlen / 2).max(1);
        let stolen: Vec<TaskId> = self.queues[v].split_off(vlen - take);
        self.queues[g] = stolen;
        self.steals += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsched_model::{TaskSet, TaskSetBuilder};
    use memsched_platform::{run, PlatformSpec, Scheduler};

    struct StealSched(StealingQueues);

    impl Scheduler for StealSched {
        fn name(&self) -> String {
            "steal-test".into()
        }
        fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
            self.0.pop(gpu, view)
        }
    }

    fn uniform_tasks(m: usize) -> TaskSet {
        let mut b = TaskSetBuilder::new();
        let d = b.add_data(10);
        for _ in 0..m {
            b.add_task(&[d], 1e6);
        }
        b.build()
    }

    #[test]
    fn idle_gpu_steals_half_the_tail() {
        let ts = uniform_tasks(8);
        // Everything initially on GPU0.
        let queues = vec![ts.tasks().collect(), Vec::new()];
        let mut sched = StealSched(StealingQueues::new(queues, 8, true));
        let spec = PlatformSpec::v100(2).with_memory(100);
        let report = run(&ts, &spec, &mut sched).unwrap();
        assert!(sched.0.steals >= 1);
        assert!(
            report.per_gpu[1].tasks >= 2,
            "GPU1 should have stolen work: {:?}",
            report.per_gpu.iter().map(|g| g.tasks).collect::<Vec<_>>()
        );
        assert_eq!(report.per_gpu[0].tasks + report.per_gpu[1].tasks, 8);
    }

    #[test]
    fn stealing_disabled_leaves_imbalance() {
        let ts = uniform_tasks(8);
        let queues = vec![ts.tasks().collect(), Vec::new()];
        let mut sched = StealSched(StealingQueues::new(queues, 8, false));
        let spec = PlatformSpec::v100(2).with_memory(100);
        let report = run(&ts, &spec, &mut sched).unwrap();
        assert_eq!(sched.0.steals, 0);
        assert_eq!(report.per_gpu[0].tasks, 8);
        assert_eq!(report.per_gpu[1].tasks, 0);
    }

    #[test]
    fn steal_takes_from_most_loaded() {
        let mut q = StealingQueues::new(
            vec![
                (0..2).map(TaskId).collect(),
                (2..12).map(TaskId).collect(),
                Vec::new(),
            ],
            4,
            true,
        );
        q.try_steal(2);
        assert_eq!(q.len(GpuId(2)), 5, "half of 10");
        assert_eq!(q.len(GpuId(1)), 5);
        assert_eq!(q.len(GpuId(0)), 2, "not the victim");
        // Stolen tasks are the tail of GPU1's list.
        assert_eq!(q.queues[2], (7..12).map(TaskId).collect::<Vec<_>>());
    }
}
