//! Task stealing shared by hMETIS+R and mHFP (§IV-B, §IV-C): when a GPU
//! has exhausted its allocated tasks while others still have work, it
//! steals **half of the remaining tasks of the most loaded GPU, taken from
//! the tail of its list**.

use crate::ready::ready_pick;
use memsched_model::{GpuId, TaskId};
use memsched_platform::obs::{GaugeKind, ObsEvent};
use memsched_platform::{Probe, RuntimeView};

/// Per-GPU task queues with Ready service and tail-half stealing.
#[derive(Clone, Debug, Default)]
pub struct StealingQueues {
    queues: Vec<Vec<TaskId>>,
    /// Ready scan window.
    window: usize,
    /// Whether stealing is enabled (for ablation benches).
    steal: bool,
    /// GPU index → bus-group id. Empty (the default) means one group —
    /// the single-bus platform — and changes nothing. With groups set,
    /// steal victims and fault re-homing are restricted to the idle
    /// GPU's own group, which is what makes the owning policies
    /// decomposable per bus group (the sharded-tier contract).
    groups: Vec<usize>,
    /// Number of successful steals (for reporting/tests).
    pub steals: u64,
    /// Observability probe (steal events, queue-depth gauges); absent on
    /// unobserved runs.
    probe: Option<Probe>,
}

impl StealingQueues {
    /// Build from per-GPU queues.
    pub fn new(queues: Vec<Vec<TaskId>>, window: usize, steal: bool) -> Self {
        Self {
            queues,
            window: window.max(1),
            steal,
            groups: Vec::new(),
            steals: 0,
            probe: None,
        }
    }

    /// Scope stealing and fault re-homing to bus groups (`groups` maps
    /// GPU index → group id). With every GPU in one group — or with the
    /// default empty map — behavior is unchanged.
    pub fn with_groups(mut self, groups: Vec<usize>) -> Self {
        self.groups = groups;
        self
    }

    /// Whether GPUs `a` and `b` share a bus group (always true without
    /// a group map).
    fn same_group(&self, a: usize, b: usize) -> bool {
        self.groups.is_empty() || self.groups[a] == self.groups[b]
    }

    /// Tasks currently queued per bus group (`groups` maps GPU → group).
    /// Valid before the first pop: the initial assignment, which is
    /// exactly what [`memsched_platform::Scheduler::group_task_counts`]
    /// must report.
    pub fn group_task_counts(&self, groups: &[usize], num_groups: usize) -> Vec<usize> {
        let mut out = vec![0; num_groups];
        for (g, q) in self.queues.iter().enumerate() {
            out[groups[g]] += q.len();
        }
        out
    }

    /// Attach an observability probe; subsequent steals emit
    /// [`ObsEvent::Steal`] and pops sample per-GPU queue depth.
    pub fn attach_probe(&mut self, probe: Probe) {
        self.probe = Some(probe);
    }

    /// Remaining tasks on `gpu`.
    pub fn len(&self, gpu: GpuId) -> usize {
        self.queues[gpu.index()].len()
    }

    /// Append `task` to `gpu`'s local queue (online arrival routing).
    pub fn push(&mut self, gpu: GpuId, task: TaskId) {
        self.queues[gpu.index()].push(task);
    }

    /// True when every queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(Vec::is_empty)
    }

    /// Pop the next task for `gpu`: Ready pick from the local queue,
    /// stealing half of the most loaded GPU's tail first if empty.
    pub fn pop(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
        let g = gpu.index();
        if self.queues[g].is_empty() && self.steal {
            if let Some((victim, take)) = self.try_steal(g) {
                if let Some(p) = &self.probe {
                    p.emit(ObsEvent::Steal {
                        t: view.now(),
                        from: victim as u32,
                        to: g as u32,
                        tasks: take,
                    });
                }
            }
        }
        let q = &mut self.queues[g];
        if q.is_empty() {
            return None;
        }
        let i = ready_pick(q, gpu, view, self.window)?;
        let task = q.remove(i);
        if let Some(p) = &self.probe {
            p.emit(ObsEvent::Gauge {
                t: view.now(),
                gpu: Some(g as u32),
                kind: GaugeKind::ReadyQueueDepth,
                value: self.queues[g].len() as f64,
            });
        }
        Some(task)
    }

    /// Fault recovery: `gpu` died with `lost` tasks in its pipeline.
    /// The orphans return to the head of the dead GPU's list (they were
    /// next in line there), and the ordinary stealing machinery folds the
    /// whole remaining tail into the survivors as they go idle. When
    /// stealing is disabled nobody would ever pull from the dead queue,
    /// so it is re-homed onto the least loaded alive GPU immediately.
    pub fn return_tasks(&mut self, gpu: GpuId, lost: &[TaskId], view: &RuntimeView<'_>) {
        let g = gpu.index();
        self.queues[g].splice(0..0, lost.iter().copied());
        if !self.steal {
            let orphans: Vec<TaskId> = std::mem::take(&mut self.queues[g]);
            let target = (0..self.queues.len())
                .filter(|&h| h != g && self.same_group(h, g) && view.is_alive(GpuId(h as u32)))
                .min_by_key(|&h| (self.queues[h].len(), h));
            match target {
                Some(h) => self.queues[h].extend(orphans),
                None => self.queues[g] = orphans,
            }
        }
    }

    /// Steal half (rounded down, at least one when possible) of the tail
    /// of the most loaded queue into queue `g`. Returns the victim and
    /// how many tasks moved, for the caller's steal event.
    fn try_steal(&mut self, g: usize) -> Option<(usize, u32)> {
        let victim = (0..self.queues.len())
            .filter(|&v| v != g && self.same_group(v, g))
            .max_by_key(|&v| self.queues[v].len())
            .filter(|&v| !self.queues[v].is_empty());
        let v = victim?;
        let vlen = self.queues[v].len();
        let take = (vlen / 2).max(1);
        let stolen: Vec<TaskId> = self.queues[v].split_off(vlen - take);
        self.queues[g] = stolen;
        self.steals += 1;
        Some((v, take as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsched_model::{TaskSet, TaskSetBuilder};
    use memsched_platform::{run, PlatformSpec, Scheduler, TraceMode};

    struct StealSched(StealingQueues);

    impl Scheduler for StealSched {
        fn name(&self) -> String {
            "steal-test".into()
        }
        fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
            self.0.pop(gpu, view)
        }
    }

    fn uniform_tasks(m: usize) -> TaskSet {
        let mut b = TaskSetBuilder::new();
        let d = b.add_data(10);
        for _ in 0..m {
            b.add_task(&[d], 1e6);
        }
        b.build()
    }

    #[test]
    fn idle_gpu_steals_half_the_tail() {
        let ts = uniform_tasks(8);
        // Everything initially on GPU0.
        let queues = vec![ts.tasks().collect(), Vec::new()];
        let mut sched = StealSched(StealingQueues::new(queues, 8, true));
        let spec = PlatformSpec::v100(2).with_memory(100);
        let report = run(&ts, &spec, &mut sched).unwrap();
        assert!(sched.0.steals >= 1);
        assert!(
            report.per_gpu[1].tasks >= 2,
            "GPU1 should have stolen work: {:?}",
            report.per_gpu.iter().map(|g| g.tasks).collect::<Vec<_>>()
        );
        assert_eq!(report.per_gpu[0].tasks + report.per_gpu[1].tasks, 8);
    }

    #[test]
    fn stealing_disabled_leaves_imbalance() {
        let ts = uniform_tasks(8);
        let queues = vec![ts.tasks().collect(), Vec::new()];
        let mut sched = StealSched(StealingQueues::new(queues, 8, false));
        let spec = PlatformSpec::v100(2).with_memory(100);
        let report = run(&ts, &spec, &mut sched).unwrap();
        assert_eq!(sched.0.steals, 0);
        assert_eq!(report.per_gpu[0].tasks, 8);
        assert_eq!(report.per_gpu[1].tasks, 0);
    }

    #[test]
    fn steal_from_single_task_victim_takes_it() {
        // vlen / 2 rounds to zero for a one-task victim; the `.max(1)`
        // must still move that last task to the idle thief.
        let mut q = StealingQueues::new(vec![vec![TaskId(0)], Vec::new()], 4, true);
        q.try_steal(1);
        assert_eq!(q.len(GpuId(0)), 0);
        assert_eq!(q.len(GpuId(1)), 1);
        assert_eq!(q.steals, 1);
    }

    #[test]
    fn steal_with_no_victims_is_a_clean_noop() {
        // Every queue empty (all survivors idle simultaneously): stealing
        // must neither panic nor count a steal, and pop returns None.
        let mut q = StealingQueues::new(vec![Vec::new(), Vec::new(), Vec::new()], 4, true);
        q.try_steal(0);
        assert_eq!(q.steals, 0);
        assert!(q.is_empty());
    }

    #[test]
    fn all_idle_survivors_drain_a_dead_queue_without_duplication() {
        // Three GPUs; GPU0 dies holding all the work. Both survivors go
        // idle at once and steal concurrently — every task must be served
        // exactly once across them.
        let ts = uniform_tasks(9);
        let queues = vec![ts.tasks().collect(), Vec::new(), Vec::new()];
        let sched = StealSched(StealingQueues::new(queues, 8, true));
        let spec = PlatformSpec::v100(3).with_memory(100);
        let plan = memsched_platform::FaultPlan::none().with_gpu_failure(0, 0);
        let config = memsched_platform::RunConfig {
            faults: plan,
            ..Default::default()
        };
        struct StealRecover(StealSched);
        impl Scheduler for StealRecover {
            fn name(&self) -> String {
                "steal-recover".into()
            }
            fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
                self.0.pop_task(gpu, view)
            }
            fn on_gpu_failed(&mut self, gpu: GpuId, lost: &[TaskId], view: &RuntimeView<'_>) {
                self.0 .0.return_tasks(gpu, lost, view);
            }
        }
        let mut recovering = StealRecover(sched);
        let report =
            memsched_platform::run_with_config(&ts, &spec, &mut recovering, &config)
                .unwrap()
                .0;
        assert_eq!(report.per_gpu[0].tasks, 0, "GPU0 died at t = 0");
        assert_eq!(report.per_gpu[1].tasks + report.per_gpu[2].tasks, 9);
        assert!(recovering.0 .0.steals >= 2, "both survivors must steal");
    }

    #[test]
    fn no_steal_rehoming_preserves_service_order() {
        // Stealing disabled: when GPU0 dies its whole queue re-homes to
        // the surviving GPU immediately, in the original service order.
        let ts = uniform_tasks(6);
        let queues = vec![ts.tasks().collect(), Vec::new()];
        struct Recover(StealingQueues);
        impl Scheduler for Recover {
            fn name(&self) -> String {
                "rehome-test".into()
            }
            fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
                self.0.pop(gpu, view)
            }
            fn on_gpu_failed(&mut self, gpu: GpuId, lost: &[TaskId], view: &RuntimeView<'_>) {
                self.0.return_tasks(gpu, lost, view);
            }
        }
        let mut sched = Recover(StealingQueues::new(queues, 8, false));
        let spec = PlatformSpec::v100(2).with_memory(100);
        let config = memsched_platform::RunConfig {
            trace: TraceMode::Full,
            faults: memsched_platform::FaultPlan::none().with_gpu_failure(0, 0),
            ..Default::default()
        };
        let (report, trace) =
            memsched_platform::run_with_config(&ts, &spec, &mut sched, &config).unwrap();
        assert_eq!(report.per_gpu[1].tasks, 6, "everything re-homed to GPU1");
        assert_eq!(sched.0.steals, 0);
        let order: Vec<usize> = trace
            .iter()
            .filter_map(|e| match e {
                memsched_platform::TraceEvent::TaskFinished { task, .. } => Some(*task),
                _ => None,
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5], "service order preserved");
    }

    #[test]
    fn observed_steals_emit_events_matching_the_counter() {
        let ts = uniform_tasks(8);
        let queues = vec![ts.tasks().collect(), Vec::new()];
        struct Observed(StealingQueues);
        impl Scheduler for Observed {
            fn name(&self) -> String {
                "steal-observed".into()
            }
            fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
                self.0.pop(gpu, view)
            }
            fn attach_probe(&mut self, probe: memsched_platform::Probe) {
                self.0.attach_probe(probe);
            }
        }
        let mut sched = Observed(StealingQueues::new(queues, 8, true));
        let spec = PlatformSpec::v100(2).with_memory(100);
        let probe = memsched_platform::Probe::unbounded();
        memsched_platform::run_observed(
            &ts,
            &spec,
            &mut sched,
            &memsched_platform::RunConfig::default(),
            &probe,
        )
        .unwrap();
        let steal_events: Vec<(u32, u32, u32)> = probe
            .events()
            .iter()
            .filter_map(|e| match *e {
                memsched_platform::ObsEvent::Steal { from, to, tasks, .. } => {
                    Some((from, to, tasks))
                }
                _ => None,
            })
            .collect();
        assert_eq!(steal_events.len() as u64, sched.0.steals);
        assert!(steal_events.iter().all(|&(from, to, tasks)| {
            from == 0 && to == 1 && tasks >= 1
        }));
    }

    #[test]
    fn group_scoped_steal_ignores_other_groups() {
        // GPU0/1 in group 0, GPU2/3 in group 1. GPU3 is idle; the only
        // loaded queue is GPU0's, but it is across the bus boundary —
        // the steal must not happen.
        let mut q = StealingQueues::new(
            vec![(0..8).map(TaskId).collect(), Vec::new(), vec![TaskId(8)], Vec::new()],
            4,
            true,
        )
        .with_groups(vec![0, 0, 1, 1]);
        q.try_steal(3);
        assert_eq!(q.len(GpuId(0)), 8, "cross-group queue untouched");
        assert_eq!(q.len(GpuId(3)), 1, "stole from its own group instead");
        assert_eq!(q.len(GpuId(2)), 0);
        assert_eq!(q.group_task_counts(&[0, 0, 1, 1], 2), vec![8, 1]);
    }

    #[test]
    fn steal_takes_from_most_loaded() {
        let mut q = StealingQueues::new(
            vec![
                (0..2).map(TaskId).collect(),
                (2..12).map(TaskId).collect(),
                Vec::new(),
            ],
            4,
            true,
        );
        q.try_steal(2);
        assert_eq!(q.len(GpuId(2)), 5, "half of 10");
        assert_eq!(q.len(GpuId(1)), 5);
        assert_eq!(q.len(GpuId(0)), 2, "not the victim");
        // Stolen tasks are the tail of GPU1's list.
        assert_eq!(q.queues[2], (7..12).map(TaskId).collect::<Vec<_>>());
    }
}
