//! The EAGER baseline (§V-A): a single shared task queue in submission
//! order; idle GPUs pick up the next task on demand. LRU eviction.
//!
//! On the row-major 2D multiplication this is the paper's pathological
//! case: tasks along a row of `C` reuse the same block-row of `A` but
//! stream through every block-column of `B`, so once `B` no longer fits in
//! memory LRU reloads all of it for every row.

use memsched_model::{GpuId, TaskId, TaskSet};
use memsched_platform::obs::{GaugeKind, ObsEvent};
use memsched_platform::{PlatformSpec, Probe, RuntimeView, Scheduler};
use std::collections::VecDeque;

/// Shared-queue scheduler: tasks are handed out in submission order to
/// whichever GPU asks first.
#[derive(Debug, Default)]
pub struct EagerScheduler {
    queue: VecDeque<TaskId>,
    probe: Option<Probe>,
}

impl EagerScheduler {
    /// New, empty scheduler (filled by [`Scheduler::prepare`]).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for EagerScheduler {
    fn name(&self) -> String {
        "EAGER".into()
    }

    fn prepare(&mut self, ts: &TaskSet, _spec: &PlatformSpec) {
        self.queue = ts.tasks().collect();
    }

    fn prepare_stream(&mut self, _ts: &TaskSet, _spec: &PlatformSpec) {
        // Online mode starts with an empty horizon; arrivals fill it.
        self.queue = VecDeque::new();
    }

    fn on_task_arrival(&mut self, task: TaskId, _view: &RuntimeView<'_>) {
        // Admission order is submission order, so with every arrival at
        // t = 0 the queue is exactly the batch `prepare` queue.
        self.queue.push_back(task);
    }

    fn pop_task(&mut self, _gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
        let t = self.queue.pop_front();
        if let Some(p) = &self.probe {
            // The queue is shared, so the depth gauge is global.
            p.emit(ObsEvent::Gauge {
                t: view.now(),
                gpu: None,
                kind: GaugeKind::ReadyQueueDepth,
                value: self.queue.len() as f64,
            });
        }
        t
    }

    fn attach_probe(&mut self, probe: Probe) {
        self.probe = Some(probe);
    }

    fn on_gpu_failed(&mut self, _gpu: GpuId, lost: &[TaskId], _view: &RuntimeView<'_>) {
        // Put the orphans back at the head in their original order: the
        // shared queue hands them to whichever survivor asks first.
        for &t in lost.iter().rev() {
            self.queue.push_front(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsched_model::figure1_example;
    use memsched_platform::run;

    #[test]
    fn executes_everything_in_order_single_gpu() {
        let ts = figure1_example();
        let mut sched = EagerScheduler::new();
        let spec = PlatformSpec::v100(1).with_memory(10);
        let report = run(&ts, &spec, &mut sched).unwrap();
        assert_eq!(report.per_gpu[0].tasks, 9);
        assert_eq!(report.total_loads, 6, "all data fits: one load each");
    }

    #[test]
    fn splits_work_across_gpus() {
        let ts = figure1_example();
        let mut sched = EagerScheduler::new();
        let spec = PlatformSpec::v100(2).with_memory(10);
        let report = run(&ts, &spec, &mut sched).unwrap();
        assert_eq!(report.per_gpu[0].tasks + report.per_gpu[1].tasks, 9);
        assert!(report.per_gpu[0].tasks > 0);
        assert!(report.per_gpu[1].tasks > 0);
    }

    #[test]
    fn lru_pathology_under_memory_pressure() {
        // 8×8 grid, memory of 8 data items: EAGER+LRU reloads columns.
        let ts = memsched_workloads::gemm_2d(8);
        let item = ts.data_size(memsched_model::DataId(0));
        let spec = PlatformSpec::v100(1).with_memory(8 * item);
        let mut sched = EagerScheduler::new();
        let report = run(&ts, &spec, &mut sched).unwrap();
        // Far more than the compulsory 16 loads.
        assert!(report.total_loads > 30, "loads = {}", report.total_loads);
    }
}
