//! DMDA and DMDAR — StarPU's "Deque Model Data Aware" schedulers
//! (Algorithms 1 and 2, §IV-A).
//!
//! DMDA allocates tasks in submission order to the GPU with the smallest
//! predicted completion time
//!
//! ```text
//! C_k(T_i) = Σ_{D_j ∈ D(T_i), D_j ∉ InMem(k)} comm_k(D_j) + comp_k(T_i)
//! ```
//!
//! where `InMem(k)` is the set of data already allocated (and therefore
//! prefetch-requested) to GPU `k`. DMDAR adds the *Ready* strategy: each
//! GPU serves its local queue favouring the task with the most input data
//! already loaded.

use crate::ready::{ready_pick, DEFAULT_READY_WINDOW};
use memsched_model::{GpuId, TaskId, TaskSet};
use memsched_platform::obs::{GaugeKind, ObsEvent};
use memsched_platform::{Nanos, PlatformSpec, Probe, RuntimeView, Scheduler};

/// The DMDA family; [`DmdaScheduler::dmda`] builds the plain variant and
/// [`DmdaScheduler::dmdar`] the Ready one used throughout the paper.
#[derive(Debug)]
pub struct DmdaScheduler {
    ready: bool,
    /// Ready scan window (ignored by plain DMDA).
    window: usize,
    /// Per-GPU allocated task queues, filled during `prepare`.
    queues: Vec<Vec<TaskId>>,
    /// Predicted completion horizon per GPU — the Eq. (1) state, hoisted
    /// into the struct so the online mode can continue the allocation
    /// incrementally as tasks arrive.
    ready_at: Vec<Nanos>,
    /// Predicted per-GPU InMem sets (prefetch-requested data).
    in_mem: Vec<Vec<bool>>,
    /// GPU index → bus group, captured from the spec in `prepare`;
    /// fault rerouting prefers survivors on the same bus.
    groups: Vec<usize>,
    /// Online mode flag, set by `prepare_stream`. The batch allocation
    /// is static and decomposes per bus group; the online allocator
    /// couples all GPUs through the shared Eq. (1) horizon.
    online: bool,
    /// Observability probe (queue-depth gauges); absent unless attached.
    probe: Option<Probe>,
    /// Serve Ready through the input-walking reference implementation.
    #[cfg(feature = "naive")]
    naive_ready: bool,
}

impl DmdaScheduler {
    /// Plain DMDA: per-GPU FIFO service of the allocation order.
    pub fn dmda() -> Self {
        Self {
            ready: false,
            window: DEFAULT_READY_WINDOW,
            queues: Vec::new(),
            ready_at: Vec::new(),
            in_mem: Vec::new(),
            groups: Vec::new(),
            online: false,
            probe: None,
            #[cfg(feature = "naive")]
            naive_ready: false,
        }
    }

    /// DMDAR: DMDA allocation + Ready reordering at runtime.
    pub fn dmdar() -> Self {
        Self {
            ready: true,
            window: DEFAULT_READY_WINDOW,
            queues: Vec::new(),
            ready_at: Vec::new(),
            in_mem: Vec::new(),
            groups: Vec::new(),
            online: false,
            probe: None,
            #[cfg(feature = "naive")]
            naive_ready: false,
        }
    }

    /// Builder: serve Ready through [`crate::ready::ready_pick_scan`]
    /// (differential testing only).
    #[cfg(feature = "naive")]
    pub fn with_naive_ready(mut self) -> Self {
        self.naive_ready = true;
        self
    }

    /// Builder: change the Ready scan window.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        self.window = window;
        self
    }

    /// The per-GPU allocation computed by `prepare` (for tests).
    pub fn queues(&self) -> &[Vec<TaskId>] {
        &self.queues
    }

    /// One Eq. (1) allocation step for `t`: route it to the GPU with the
    /// smallest predicted completion time and update the predicted
    /// horizon and InMem state. `now` floors each GPU's horizon (0 in
    /// the batch prepare, the arrival instant online); GPUs flagged in
    /// `dead` are skipped (batch allocation passes `None`).
    fn allocate(&mut self, ts: &TaskSet, spec: &PlatformSpec, t: TaskId, now: Nanos, dead: Option<&dyn Fn(usize) -> bool>) {
        let k = self.queues.len();
        let mut best: Option<(usize, Nanos)> = None;
        for g in 0..k {
            if dead.is_some_and(|is_dead| is_dead(g)) {
                continue;
            }
            let comp = spec.compute_time_on(g, ts.flops(t));
            let comm: Nanos = ts
                .input_ids(t)
                .filter(|&d| !self.in_mem[g][d.index()])
                .map(|d| spec.comm_estimate(ts.data_size(d)))
                .sum();
            let c = self.ready_at[g].max(now) + comm + comp;
            if best.is_none_or(|(_, bc)| c < bc) {
                best = Some((g, c));
            }
        }
        // With every GPU dead the engine has already aborted; park the
        // task on GPU 0 to stay panic-free.
        let (g, c) = best.unwrap_or((0, now));
        self.queues[g].push(t);
        self.ready_at[g] = c;
        for d in ts.input_ids(t) {
            self.in_mem[g][d.index()] = true; // prefetch requested (Alg. 1 l.8-9)
        }
    }
}

impl Scheduler for DmdaScheduler {
    fn name(&self) -> String {
        if self.ready { "DMDAR".into() } else { "DMDA".into() }
    }

    fn prepare(&mut self, ts: &TaskSet, spec: &PlatformSpec) {
        let k = spec.num_gpus;
        self.queues = vec![Vec::new(); k];
        // Predicted state per GPU: completion horizon and InMem set.
        self.ready_at = vec![0; k];
        self.in_mem = vec![vec![false; ts.num_data()]; k];
        self.groups = (0..k).map(|g| spec.bus_of(g)).collect();
        self.online = false;
        for t in ts.tasks() {
            // `now = 0` makes `ready_at.max(now)` the identity, so this
            // is exactly the historical batch allocation.
            self.allocate(ts, spec, t, 0, None);
        }
    }

    fn prepare_stream(&mut self, ts: &TaskSet, spec: &PlatformSpec) {
        // Start from an empty horizon; `on_task_arrival` continues the
        // Eq. (1) allocation one task at a time.
        let k = spec.num_gpus;
        self.queues = vec![Vec::new(); k];
        self.ready_at = vec![0; k];
        self.in_mem = vec![vec![false; ts.num_data()]; k];
        self.groups = (0..k).map(|g| spec.bus_of(g)).collect();
        self.online = true;
    }

    fn on_task_arrival(&mut self, task: TaskId, view: &RuntimeView<'_>) {
        let dead: Vec<bool> = (0..self.queues.len())
            .map(|g| !view.is_alive(GpuId(g as u32)))
            .collect();
        self.allocate(
            view.task_set(),
            view.spec(),
            task,
            view.now(),
            Some(&|g| dead[g]),
        );
    }

    fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
        let q = &mut self.queues[gpu.index()];
        if q.is_empty() {
            return None;
        }
        let i = if self.ready {
            #[cfg(feature = "naive")]
            {
                if self.naive_ready {
                    crate::ready::ready_pick_scan(q, gpu, view, self.window)?
                } else {
                    ready_pick(q, gpu, view, self.window)?
                }
            }
            #[cfg(not(feature = "naive"))]
            {
                ready_pick(q, gpu, view, self.window)?
            }
        } else {
            0
        };
        let task = q.remove(i);
        if let Some(p) = &self.probe {
            p.emit(ObsEvent::Gauge {
                t: view.now(),
                gpu: Some(gpu.0),
                kind: GaugeKind::ReadyQueueDepth,
                value: self.queues[gpu.index()].len() as f64,
            });
        }
        Some(task)
    }

    fn attach_probe(&mut self, probe: Probe) {
        self.probe = Some(probe);
    }

    fn on_gpu_failed(&mut self, gpu: GpuId, lost: &[TaskId], view: &RuntimeView<'_>) {
        // Re-run the allocation step for the orphans only: the dead GPU's
        // interrupted pipeline tasks and its whole unserved queue move to
        // the shortest surviving queue (tie → lowest index), preserving
        // their original service order. Survivors on the same bus group
        // are preferred — the orphans' prefetch plan targeted that bus —
        // with a fall-back to any alive GPU when the whole group is dead
        // so the run can still complete.
        let g = gpu.index();
        let mut orphans: Vec<TaskId> = lost.to_vec();
        orphans.append(&mut self.queues[g]);
        let same_group = |h: usize| self.groups.is_empty() || self.groups[h] == self.groups[g];
        let mut alive: Vec<usize> = (0..self.queues.len())
            .filter(|&h| h != g && same_group(h) && view.is_alive(GpuId(h as u32)))
            .collect();
        if alive.is_empty() {
            alive = (0..self.queues.len())
                .filter(|&h| h != g && view.is_alive(GpuId(h as u32)))
                .collect();
        }
        if alive.is_empty() {
            // No survivors to reroute to; the engine aborts the run.
            self.queues[g] = orphans;
            return;
        }
        for t in orphans {
            let &target = alive
                .iter()
                .min_by_key(|&&h| (self.queues[h].len(), h))
                .expect("alive is non-empty");
            self.queues[target].push(t);
        }
    }

    fn decomposes_per_group(&self) -> bool {
        // The batch allocation is computed once in `prepare`; afterwards
        // each GPU serves (and Ready-reorders) only its own queue, and
        // fault rerouting prefers the same bus group. The online
        // allocator routes arrivals across every GPU's horizon.
        !self.online
    }

    fn group_task_counts(&self, groups: &[usize], num_groups: usize) -> Option<Vec<usize>> {
        if self.online {
            return None;
        }
        let mut out = vec![0; num_groups];
        for (g, q) in self.queues.iter().enumerate() {
            out[groups[g]] += q.len();
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsched_model::figure1_example;
    use memsched_platform::run;
    use memsched_workloads::gemm_2d;

    #[test]
    fn allocation_covers_all_tasks() {
        let ts = gemm_2d(6);
        let spec = PlatformSpec::v100(2);
        let mut s = DmdaScheduler::dmdar();
        s.prepare(&ts, &spec);
        let total: usize = s.queues().iter().map(Vec::len).sum();
        assert_eq!(total, 36);
        // Both GPUs get a sensible share.
        assert!(s.queues().iter().all(|q| q.len() >= 12));
    }

    #[test]
    fn completion_time_model_balances_load() {
        // Eq. (1) is a greedy earliest-completion rule: the allocation
        // must end up balanced, and the predicted data replication must
        // stay below full duplication (some affinity is exploited).
        let ts = gemm_2d(8);
        let spec = PlatformSpec::v100(2);
        let mut s = DmdaScheduler::dmda();
        s.prepare(&ts, &spec);
        let (a, b) = (s.queues()[0].len(), s.queues()[1].len());
        assert_eq!(a + b, 64);
        assert!(a.abs_diff(b) <= 16, "imbalanced: {a} vs {b}");
        // Count data replicated on both GPUs in the predicted InMem sets.
        let mut used = vec![[false; 2]; ts.num_data()];
        for (g, q) in s.queues().iter().enumerate() {
            for &t in q {
                for &d in ts.inputs(t) {
                    used[d as usize][g] = true;
                }
            }
        }
        let replicated = used.iter().filter(|u| u[0] && u[1]).count();
        assert!(
            replicated < ts.num_data(),
            "every data item replicated: no affinity at all"
        );
    }

    #[test]
    fn single_gpu_runs_everything() {
        let ts = figure1_example();
        let spec = PlatformSpec::v100(1).with_memory(6);
        let mut s = DmdaScheduler::dmdar();
        let report = run(&ts, &spec, &mut s).unwrap();
        assert_eq!(report.per_gpu[0].tasks, 9);
        assert_eq!(report.total_loads, 6);
    }

    #[test]
    fn two_gpus_run_everything_under_pressure() {
        let ts = gemm_2d(6);
        let item = ts.data_size(memsched_model::DataId(0));
        let spec = PlatformSpec::v100(2).with_memory(4 * item);
        let mut s = DmdaScheduler::dmdar();
        let report = run(&ts, &spec, &mut s).unwrap();
        assert_eq!(report.max_load() + report.per_gpu.iter().map(|g| g.tasks).min().unwrap(), 36);
        assert!(report.total_loads >= 12, "compulsory loads at least");
    }

    #[test]
    fn dmdar_beats_dmda_on_reordered_benefit() {
        // Under memory pressure Ready should not be worse than FIFO.
        let ts = gemm_2d(8);
        let item = ts.data_size(memsched_model::DataId(0));
        let spec = PlatformSpec::v100(1).with_memory(6 * item);
        let mut dmda = DmdaScheduler::dmda();
        let mut dmdar = DmdaScheduler::dmdar();
        let loads_fifo = run(&ts, &spec, &mut dmda).unwrap().total_loads;
        let loads_ready = run(&ts, &spec, &mut dmdar).unwrap().total_loads;
        assert!(
            loads_ready <= loads_fifo,
            "ready {loads_ready} vs fifo {loads_fifo}"
        );
    }

    #[test]
    fn heterogeneous_gpus_get_proportional_work() {
        // One GPU twice as fast: DMDA's completion-time model should give
        // it roughly two thirds of the tasks.
        let ts = gemm_2d(12);
        let spec = PlatformSpec::v100(2)
            .with_heterogeneous_gflops(vec![2.0 * 13_253.0, 13_253.0]);
        let mut s = DmdaScheduler::dmda();
        s.prepare(&ts, &spec);
        let fast = s.queues()[0].len() as f64;
        let slow = s.queues()[1].len() as f64;
        assert!(
            fast / slow > 1.4 && fast / slow < 2.8,
            "fast/slow = {:.2}",
            fast / slow
        );
    }

    #[test]
    fn name_reflects_variant() {
        assert_eq!(DmdaScheduler::dmda().name(), "DMDA");
        assert_eq!(DmdaScheduler::dmdar().name(), "DMDAR");
    }
}
