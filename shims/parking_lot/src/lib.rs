//! Offline shim for `parking_lot`: the non-poisoning `Mutex`/`RwLock` API
//! implemented over `std::sync`. A poisoned std lock means a worker thread
//! panicked; matching parking_lot semantics, the panic is propagated to
//! the locking thread rather than surfaced as a `Result`.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
