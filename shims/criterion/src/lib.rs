//! Offline shim for `criterion`.
//!
//! Source-compatible with the subset of criterion's API the workspace's
//! benches use, implemented as a plain timing harness: each benchmark is
//! warmed up for `warm_up_time`, then iterated for at least
//! `measurement_time`, and the mean wall time per iteration is printed to
//! stdout (with derived throughput when [`Throughput`] was set). There
//! are no statistics, plots or baselines — the benches are kept runnable
//! and comparable, not publication-grade.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, handed to every `criterion_group!` target.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.warm_up_time, self.measurement_time);
        f(&mut b);
        b.report(name, None);
        self
    }
}

/// A group of benchmarks sharing timing settings and throughput units.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is
    /// driven by `measurement_time` alone.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the warm-up duration for subsequent benchmarks.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set the measurement duration for subsequent benchmarks.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Report throughput alongside time for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.warm_up_time, self.measurement_time);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0), self.throughput);
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.warm_up_time, self.measurement_time);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into().0), self.throughput);
        self
    }

    /// End the group (a separator line, matching criterion's visual break).
    pub fn finish(self) {
        println!();
    }
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Runs and times one benchmark body.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Mean duration of one iteration, filled by [`Bencher::iter`].
    mean: Option<Duration>,
    iters: u64,
}

impl Bencher {
    fn new(warm_up_time: Duration, measurement_time: Duration) -> Self {
        Bencher {
            warm_up_time,
            measurement_time,
            mean: None,
            iters: 0,
        }
    }

    /// Warm up, then run `f` repeatedly for the measurement window and
    /// record the mean wall time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let started = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(f());
            iters += 1;
            if started.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.mean = Some(started.elapsed() / iters.max(1) as u32);
        self.iters = iters;
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        let Some(mean) = self.mean else {
            println!("{id:<60} (no measurement)");
            return;
        };
        let per = match throughput {
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                format!("  {:>12.1} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if !mean.is_zero() => {
                format!("  {:>12.1} MB/s", n as f64 / mean.as_secs_f64() / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "{id:<60} {:>12.3} ms/iter  ({} iters){per}",
            mean.as_secs_f64() * 1e3,
            self.iters
        );
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }

    #[test]
    fn bencher_records_mean() {
        let mut b = Bencher::new(Duration::from_millis(1), Duration::from_millis(5));
        b.iter(|| black_box(1 + 1));
        assert!(b.mean.is_some());
        assert!(b.iters > 0);
    }
}
