//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the shim `serde` crate's `Value`-tree traits. Because `syn`/`quote`
//! are unavailable offline, the item is parsed directly from the
//! `proc_macro` token stream. Supported shapes — exactly what the
//! workspace derives on:
//!
//! * structs with named fields,
//! * tuple structs (single-field newtypes serialize transparently),
//! * unit structs,
//! * enums with unit, newtype, tuple and struct variants
//!   (externally tagged, like real serde's default representation).
//!
//! Generic types and serde field attributes are not supported and panic
//! at expansion time with a clear message.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("deserialize impl parses")
}

// --- parsing -------------------------------------------------------------

fn parse_item(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let kw = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g))
            }
            other => panic!("serde shim derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };

    Input { name, kind }
}

/// Advance past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    toks.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Skip a type, stopping after the `,` (if any) that terminates the field.
/// Tracks `<...>` nesting so commas inside generic arguments don't split.
fn skip_type_and_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(g: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, found {other}"),
        };
        i += 1; // name
        i += 1; // ':'
        skip_type_and_comma(&toks, &mut i);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_type_and_comma(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g))
            }
            _ => VariantFields::Unit,
        };
        // Skip any discriminant up to the separating comma.
        while i < toks.len() && !matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

// --- codegen -------------------------------------------------------------

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(ty: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.fields {
        VariantFields::Unit => format!(
            "{ty}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
        ),
        VariantFields::Named(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{ty}::{vn} {{ {binds} }} => ::serde::Value::Obj(::std::vec![\
                   (::std::string::String::from(\"{vn}\"), \
                    ::serde::Value::Obj(::std::vec![{}]))]),",
                entries.join(", ")
            )
        }
        VariantFields::Tuple(1) => format!(
            "{ty}::{vn}(f0) => ::serde::Value::Obj(::std::vec![\
               (::std::string::String::from(\"{vn}\"), \
                ::serde::Serialize::to_value(f0))]),"
        ),
        VariantFields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                .collect();
            format!(
                "{ty}::{vn}({}) => ::serde::Value::Obj(::std::vec![\
                   (::std::string::String::from(\"{vn}\"), \
                    ::serde::Value::Arr(::std::vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.field(\"{f}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&arr[{k}])?"))
                .collect();
            format!(
                "let arr = v.as_arr().ok_or_else(|| \
                   ::serde::DeError::new(\"expected array for {name}\"))?;\n\
                 if arr.len() != {n} {{ return ::std::result::Result::Err(\
                   ::serde::DeError::new(\"wrong tuple arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::UnitStruct => {
            format!("let _ = v; ::std::result::Result::Ok({name})")
        }
        Kind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(v: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize_enum(ty: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({ty}::{0}),", v.name))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.fields {
                VariantFields::Unit => None,
                VariantFields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 inner.field(\"{f}\", \"{ty}::{vn}\")?)?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({ty}::{vn} {{ {} }}),",
                        inits.join(", ")
                    ))
                }
                VariantFields::Tuple(1) => Some(format!(
                    "\"{vn}\" => ::std::result::Result::Ok(\
                       {ty}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                )),
                VariantFields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&arr[{k}])?"))
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                           let arr = inner.as_arr().ok_or_else(|| \
                             ::serde::DeError::new(\"expected array for {ty}::{vn}\"))?;\n\
                           if arr.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::new(\"wrong arity for {ty}::{vn}\")); }}\n\
                           ::std::result::Result::Ok({ty}::{vn}({}))\n\
                         }},",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();

    format!(
        "if let ::std::option::Option::Some(s) = v.as_str() {{\n\
           return match s {{\n{units}\n\
             other => ::std::result::Result::Err(::serde::DeError::new(\
               ::std::format!(\"unknown {ty} variant `{{other}}`\"))),\n\
           }};\n\
         }}\n\
         let obj = v.as_obj().ok_or_else(|| \
           ::serde::DeError::new(\"expected string or object for {ty}\"))?;\n\
         if obj.len() != 1 {{ return ::std::result::Result::Err(\
           ::serde::DeError::new(\"expected single-key object for {ty}\")); }}\n\
         let (tag, inner) = &obj[0];\n\
         let _ = inner;\n\
         match tag.as_str() {{\n{tags}\n\
           other => ::std::result::Result::Err(::serde::DeError::new(\
             ::std::format!(\"unknown {ty} variant `{{other}}`\"))),\n\
         }}",
        units = unit_arms.join("\n"),
        tags = tagged_arms.join("\n"),
    )
}
