//! Offline shim for `serde`.
//!
//! Instead of the real crate's zero-copy `Serializer`/`Deserializer`
//! machinery, this shim routes everything through an owned JSON-like
//! [`Value`] tree: `Serialize` lowers a value into a `Value`,
//! `Deserialize` lifts one back. That is all the workspace needs (its
//! only serialization sink is `serde_json`), and it keeps the derive
//! macros — implemented by hand in the sibling `serde_derive` shim —
//! small enough to live without `syn`.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree. Object keys keep insertion order so serialized
/// output is deterministic (important for the harness determinism tests).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

/// JSON number with the integer/float distinction preserved so `u64`
/// round-trips exactly (simulation timestamps are nanosecond `u64`s).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field of an object; error mentioning `ty` otherwise.
    pub fn field<'a>(&'a self, key: &str, ty: &str) -> Result<&'a Value, DeError> {
        let obj = self
            .as_obj()
            .ok_or_else(|| DeError::new(format!("expected object for {ty}")))?;
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::new(format!("missing field `{key}` for {ty}")))
    }
}

/// Deserialization error (a message, no position tracking).
#[derive(Clone, Debug)]
pub struct DeError(String);

impl DeError {
    /// Build an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` into a [`Value`].
pub trait Serialize {
    /// Convert to the value tree.
    fn to_value(&self) -> Value;
}

/// Lift `Self` back out of a [`Value`].
pub trait Deserialize: Sized {
    /// Convert from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls -----------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Number::U(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Num(Number::U(u)) => *u,
                    Value::Num(Number::I(i)) if *i >= 0 => *i as u64,
                    _ => return Err(DeError::new(concat!("expected unsigned integer for ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::Num(Number::U(i as u64)) } else { Value::Num(Number::I(i)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::Num(Number::U(u)) => i64::try_from(*u)
                        .map_err(|_| DeError::new("integer out of range"))?,
                    Value::Num(Number::I(i)) => *i,
                    _ => return Err(DeError::new(concat!("expected integer for ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(Number::F(f)) => Ok(*f),
            Value::Num(Number::U(u)) => Ok(*u as f64),
            Value::Num(Number::I(i)) => Ok(*i as f64),
            _ => Err(DeError::new("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self as f64))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&18_446_744_073_709_551_615u64.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Vec::<u32>::from_value(&vec![1u32, 2].to_value()).unwrap(), vec![1, 2]);
    }

    #[test]
    fn field_lookup_reports_missing() {
        let v = Value::Obj(vec![("a".into(), Value::Bool(true))]);
        assert!(v.field("a", "T").is_ok());
        assert!(v.field("b", "T").unwrap_err().to_string().contains("missing field `b`"));
    }
}
