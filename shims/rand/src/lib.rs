//! Offline shim for `rand` 0.10.
//!
//! Provides the exact surface the workspace uses: a seedable [`rngs::StdRng`],
//! [`RngExt::random_range`] over integer ranges, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic per seed, but a *different stream* than the
//! real crate's ChaCha12 `StdRng`. All seeds in this repository (workload
//! shuffles, DARTS tie-breaking, partitioner restarts, golden traces) are
//! calibrated against this shim.

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range, the subset of `rand 0.10`'s `Rng`/`RngExt`
/// extension trait that the workspace calls.
pub trait RngExt: RngCore {
    /// A uniform sample from `range`. Panics on an empty range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore> RngExt for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, span)`. Uses Lemire-style rejection so the
/// stream is unbiased and stable across platforms.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for ::std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for ::std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range!(u32, u64, usize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded through SplitMix64. Small, fast, `Send`, and
    /// deterministic — sufficient statistical quality for tie-breaking
    /// and shuffling in a simulator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Slice extension: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Uniformly permute the slice using `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(10..20usize);
            assert!((10..20).contains(&x));
            let y = rng.random_range(5..=5u32);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn shuffle_is_a_deterministic_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut w = v.clone();
        v.shuffle(&mut StdRng::seed_from_u64(42));
        w.shuffle(&mut StdRng::seed_from_u64(42));
        assert_eq!(v, w);
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "seed 42 permutes");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
