//! Offline shim for `serde_json`: JSON printing and parsing over the shim
//! `serde` crate's [`Value`] tree.
//!
//! Output is deterministic: object keys keep insertion order and floats
//! print with Rust's shortest round-trip representation (`{:?}`), so the
//! same `Value` always serializes to the same bytes — a property the
//! experiment harness's determinism tests rely on.

pub use serde::{DeError, Number, Value};
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Lower any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent, like the real crate).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// --- printer -------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(Number::U(u)) => out.push_str(&u.to_string()),
        Value::Num(Number::I(i)) => out.push_str(&i.to_string()),
        Value::Num(Number::F(f)) => {
            if f.is_finite() {
                // `{:?}` gives the shortest representation that parses back
                // to the same f64 (e.g. "1.0", not "1").
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1)
        }),
        Value::Obj(entries) => write_seq(out, indent, depth, entries.len(), '{', '}', |out, i| {
            let (k, v) = &entries[i];
            write_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, v, indent, depth + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() || text == "-" {
            return Err(Error(format!("expected number at byte {start}")));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact_and_pretty() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Num(Number::U(u64::MAX))),
            ("b".into(), Value::Arr(vec![Value::Num(Number::F(1.5)), Value::Null])),
            ("s".into(), Value::Str("q\"uote\n".into())),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(parse_value(&text).unwrap(), v);
        }
    }

    #[test]
    fn floats_keep_shortest_roundtrip_repr() {
        let s = to_string(&vec![1.0f64, 0.1, 13_253.0]).unwrap();
        assert_eq!(s, "[1.0,0.1,13253.0]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value("1 x").is_err());
        assert!(from_str::<u64>("[]").is_err());
    }
}
