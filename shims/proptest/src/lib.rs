//! Offline shim for `proptest`.
//!
//! A miniature property-testing engine with the same source-level API as
//! the subset of proptest this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, integer-range and tuple strategies,
//! [`Just`], [`any`], [`collection::vec`], the [`proptest!`] macro and the
//! `prop_assert*`/`prop_assume!` assertion macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with its case number and the
//!   assertion message instead of a minimized input.
//! * **Fixed seeding.** Each test's RNG is seeded from a hash of the test
//!   name, so runs are reproducible without a persistence file.

use std::marker::PhantomData;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash), making every `proptest!` test
    /// deterministic across runs and platforms.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample from `[0, span)`; `span` must be non-zero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX % span) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// Per-test configuration (`cases` is the only knob the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F, O>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            f,
            _out: PhantomData,
        }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F, S>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            inner: self,
            f,
            _out: PhantomData,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F, O> {
    inner: S,
    f: F,
    _out: PhantomData<fn() -> O>,
}

impl<S, F, O> Strategy for Map<S, F, O>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F, S2> {
    inner: S,
    f: F,
    _out: PhantomData<fn() -> S2>,
}

impl<S, F, S2> Strategy for FlatMap<S, F, S2>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always-the-same-value strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo + rng.below(span + 1) as i64) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident),+)),+) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E), (A, B, C, D, E, F));

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T` (`any::<u64>()` etc.).
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body;
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = result {
                        ::std::panic!(
                            "[{}] case {}/{} failed: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                ::std::format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            ));
        }
    }};
}

/// Skip the current case (counts as a pass) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 5u32..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(y, 5);
        }

        #[test]
        fn map_and_flat_map_compose(v in collection::vec(0u32..5, 1..=4), e in arb_even()) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n > 3);
            prop_assert!(n > 3);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let s = (0u64..1_000_000, collection::vec(0u32..100, 2..=8));
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
