//! Offline shim for `crossbeam`: the `thread::scope` API implemented over
//! `std::thread::scope` (stable since Rust 1.63, which makes the real
//! crate's unsafe lifetime machinery unnecessary here).
//!
//! Divergence from the real crate: a panicking child thread unwinds
//! through `scope` itself (std semantics) instead of being captured into
//! the returned `Result`'s `Err` — the `Ok` branch is only reached when
//! every spawned thread completed normally, which is the property callers
//! `.unwrap()` for.

/// Scoped threads.
pub mod thread {
    use std::thread as stdthread;

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// thread's closure, allowing nested spawns.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// again (crossbeam's signature), so workers can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> stdthread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> stdthread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let total = super::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
                .len()
        })
        .unwrap();
        assert_eq!(total, 8);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = super::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
