//! # memsched
//!
//! A Rust reproduction of *“Memory-Aware Scheduling of Tasks Sharing Data
//! on Multiple GPUs with Dynamic Runtime Systems”* (Gonthier, Marchal,
//! Thibault — IPDPS 2022): the DARTS data-aware scheduler with its LUF
//! eviction policy, the DMDA(R), hMETIS+R and (m)HFP comparison
//! strategies, a StarPU-like multi-GPU discrete-event runtime to execute
//! them on, a from-scratch multilevel hypergraph partitioner, and the
//! paper's complete evaluation workloads and figure harness.
//!
//! This facade crate re-exports the public API of every workspace crate:
//!
//! * [`model`] — the bipartite task/data model, schedules, offline replay;
//! * [`platform`] — the discrete-event multi-GPU runtime simulator;
//! * [`obs`] — structured tracing, Chrome/Paje export, metrics registry;
//! * [`schedulers`] — EAGER, DMDA(R), hMETIS+R, mHFP, DARTS(+LUF), and
//!   the residency-aware prefix Router;
//! * [`hypergraph`] — the multilevel K-way partitioner;
//! * [`workloads`] — 2D/3D gemm, Cholesky, sparse and prefix-tree
//!   generators, plus seeded arrival traffic;
//! * [`experiments`] — the per-figure evaluation harness.
//!
//! ## Quickstart
//!
//! ```
//! use memsched::prelude::*;
//!
//! // The paper's platform: 2 V100s, 500 MB each, shared PCIe bus.
//! let spec = PlatformSpec::v100(2);
//! // A 10×10 blocked matrix multiplication.
//! let ts = memsched::workloads::gemm_2d(10);
//! // DARTS with the LUF eviction policy (the paper's contribution).
//! let mut sched = DartsScheduler::new(DartsConfig::luf());
//! let report = run(&ts, &spec, &mut sched).unwrap();
//! assert_eq!(report.per_gpu.iter().map(|g| g.tasks).sum::<usize>(), 100);
//! println!("{:.0} GFlop/s, {:.0} MB transferred",
//!          report.gflops(), report.transfers_mb());
//! ```

#![warn(missing_docs)]

pub use memsched_experiments as experiments;
pub use memsched_hypergraph as hypergraph;
pub use memsched_model as model;
pub use memsched_obs as obs;
pub use memsched_platform as platform;
pub use memsched_schedulers as schedulers;
pub use memsched_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use memsched_model::{
        bounds, replay, DataId, EvictionPolicy, GpuId, Schedule, TaskId, TaskSet, TaskSetBuilder,
    };
    pub use memsched_obs::{ObsEvent, Probe};
    pub use memsched_platform::{
        run, run_observed, run_with_config, trace_checksum, AdmissionConfig, FaultPlan,
        OnlineStats, PlatformSpec, RunConfig, RunError, RunReport, RuntimeView, Scheduler,
        ShedPolicy, TraceMode, TransferFaultSpec,
    };
    pub use memsched_schedulers::{
        DartsConfig, DartsEviction, DartsScheduler, DmdaScheduler, EagerScheduler, HfpScheduler,
        HmetisRScheduler, NamedScheduler,
    };
    pub use memsched_workloads::Workload;
}
