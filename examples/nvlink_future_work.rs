//! The paper's §VI future-work direction, implemented: an NVLink fabric
//! between the GPUs lets a fetch come from a peer replica instead of
//! crossing the shared PCI bus. This example measures how much of the
//! memory-pressure penalty the fabric recovers for each scheduler.
//!
//! ```text
//! cargo run --release --example nvlink_future_work
//! ```

use memsched::prelude::*;
use memsched::workloads::constants::GEMM2D_DATA_BYTES;

fn main() {
    let ts = memsched::workloads::gemm_2d(40);
    let mem = 12 * GEMM2D_DATA_BYTES; // well below one input matrix
    let pci = PlatformSpec::v100(4).with_memory(mem);
    let nvl = {
        let mut s = pci.clone();
        s.nvlink_bandwidth = Some(memsched::platform::NVLINK_BANDWIDTH);
        s
    };

    println!(
        "2D gemm 40x40 on 4 GPUs, {:.0} MB memory each\n",
        mem as f64 / 1e6
    );
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12}",
        "scheduler", "PCI-only GF/s", "NVLink GF/s", "PCI MB", "NVLink MB"
    );
    for named in [
        NamedScheduler::Eager,
        NamedScheduler::Dmdar,
        NamedScheduler::HmetisR,
        NamedScheduler::DartsLuf,
    ] {
        let mut s1 = named.build();
        let base = run(&ts, &pci, s1.as_mut()).expect("pci run");
        let mut s2 = named.build();
        let with_link = run(&ts, &nvl, s2.as_mut()).expect("nvlink run");
        println!(
            "{:<12} {:>14.0} {:>14.0} {:>12.0} {:>12.0}",
            base.scheduler,
            base.gflops(),
            with_link.gflops(),
            with_link.pci_transfers_mb(),
            with_link.nvlink_mb()
        );
    }
    println!(
        "\nPeer replicas absorb part of the reload traffic, so the shared \
         PCI bus stops being the bottleneck earlier — the gain is largest \
         for schedulers that replicate data across GPUs."
    );
}
