//! Memory-pressure study: sweep the per-GPU memory clamp on a fixed
//! workload and watch the schedulers separate — the essence of Figures
//! 3–4 read along the other axis.
//!
//! ```text
//! cargo run --release --example memory_pressure
//! ```

use memsched::prelude::*;
use memsched::workloads::constants::GEMM2D_DATA_BYTES;

fn main() {
    let n = 30;
    let ts = memsched::workloads::gemm_2d(n);
    let full = ts.working_set_bytes();
    println!(
        "2D gemm {n}x{n}: {} tasks, working set {:.0} MB\n",
        ts.num_tasks(),
        full as f64 / 1e6
    );

    // Memory from "everything fits" down to "a handful of data items".
    let fractions = [1.1f64, 0.6, 0.5, 0.3, 0.2, 0.1];
    println!(
        "{:>10} {:>8}   {:>22} {:>22} {:>22}",
        "mem(MB)", "items", "EAGER", "DMDAR", "DARTS+LUF"
    );
    for f in fractions {
        let mem = ((full as f64 * f) as u64).max(4 * GEMM2D_DATA_BYTES);
        let spec = PlatformSpec::v100(1).with_memory(mem);
        let mut line = format!(
            "{:>10.0} {:>8}  ",
            mem as f64 / 1e6,
            mem / GEMM2D_DATA_BYTES
        );
        for named in [
            NamedScheduler::Eager,
            NamedScheduler::Dmdar,
            NamedScheduler::DartsLuf,
        ] {
            let mut sched = named.build();
            let r = run(&ts, &spec, sched.as_mut()).expect("run failed");
            line.push_str(&format!(
                " {:>9.0}GF/{:>6.0}MB",
                r.gflops(),
                r.transfers_mb()
            ));
        }
        println!("{line}");
    }

    println!(
        "\nEAGER collapses once one input matrix no longer fits; DARTS+LUF \
         holds close to the roofline much longer (Figures 3-4 of the paper)."
    );
}
