//! Writing your own scheduling policy against the runtime interface:
//! a locality-aware variant of the shared queue that skips ahead to tasks
//! whose inputs are already resident, compared against EAGER and the
//! offline replay bound.
//!
//! ```text
//! cargo run --release --example custom_scheduler
//! ```

use memsched::prelude::*;
use std::collections::VecDeque;

/// A shared queue that scans a small window for a zero-transfer task
/// before falling back to FIFO order.
struct WindowedLocalityScheduler {
    queue: VecDeque<TaskId>,
    window: usize,
}

impl Scheduler for WindowedLocalityScheduler {
    fn name(&self) -> String {
        format!("windowed-locality({})", self.window)
    }

    fn prepare(&mut self, ts: &TaskSet, _spec: &PlatformSpec) {
        self.queue = ts.tasks().collect();
    }

    fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
        // Prefer a task with everything already on this GPU.
        let pick = self
            .queue
            .iter()
            .take(self.window)
            .position(|&t| view.missing_bytes(gpu, t) == 0)
            .unwrap_or(0);
        self.queue.remove(pick)
    }
}

fn main() {
    let ts = memsched::workloads::gemm_2d(24);
    let item = memsched::workloads::constants::GEMM2D_DATA_BYTES;
    let spec = PlatformSpec::v100(2).with_memory(10 * item);

    println!(
        "2D gemm 24x24 on 2 GPUs with {:.0} MB each\n",
        spec.memory_bytes as f64 / 1e6
    );
    println!("{:<26} {:>10} {:>14}", "scheduler", "GFlop/s", "transfers(MB)");

    let mut eager = EagerScheduler::new();
    let r = run(&ts, &spec, &mut eager).unwrap();
    println!("{:<26} {:>10.0} {:>14.0}", r.scheduler, r.gflops(), r.transfers_mb());

    for window in [8, 64] {
        let mut mine = WindowedLocalityScheduler {
            queue: VecDeque::new(),
            window,
        };
        let r = run(&ts, &spec, &mut mine).unwrap();
        println!("{:<26} {:>10.0} {:>14.0}", r.scheduler, r.gflops(), r.transfers_mb());
    }

    let mut darts = DartsScheduler::new(DartsConfig::luf());
    let r = run(&ts, &spec, &mut darts).unwrap();
    println!("{:<26} {:>10.0} {:>14.0}", r.scheduler, r.gflops(), r.transfers_mb());

    // Offline check: replay DARTS-like row ordering under Belady's rule to
    // see how far from the offline optimum the online policies land.
    let mut schedule = Schedule::new(1);
    for t in ts.tasks() {
        schedule.push(GpuId(0), t);
    }
    let replayed = replay(&ts, &schedule, spec.memory_bytes, EvictionPolicy::Belady).unwrap();
    println!(
        "\noffline single-GPU row order + Belady eviction: {} loads ({:.0} MB)",
        replayed.total_loads(),
        replayed.total_load_bytes() as f64 / 1e6
    );
}
