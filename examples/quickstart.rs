//! Quickstart: run every scheduler of the paper on one workload and
//! compare throughput and data movement.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use memsched::prelude::*;

fn main() {
    // A 2D blocked matrix multiplication of 40×40 tasks (~1.2 GB working
    // set) on two 500 MB V100s — squarely in the memory-constrained
    // regime where the paper's strategies diverge.
    let ts = memsched::workloads::gemm_2d(40);
    let spec = PlatformSpec::v100(2);

    println!(
        "workload: 2D gemm 40x40 — {} tasks, {} data items, {:.0} MB working set",
        ts.num_tasks(),
        ts.num_data(),
        ts.working_set_bytes() as f64 / 1e6
    );
    println!(
        "platform: {} GPUs x {:.0} MB, {:.0} GB/s shared bus, roofline {:.0} GFlop/s\n",
        spec.num_gpus,
        spec.memory_bytes as f64 / 1e6,
        spec.bus_bandwidth / 1e9,
        spec.num_gpus as f64 * spec.gpu_gflops
    );

    println!(
        "{:<24} {:>10} {:>14} {:>8} {:>10}",
        "scheduler", "GFlop/s", "transfers(MB)", "loads", "max tasks"
    );
    for named in [
        NamedScheduler::Eager,
        NamedScheduler::Dmdar,
        NamedScheduler::HmetisR,
        NamedScheduler::Mhfp,
        NamedScheduler::Darts,
        NamedScheduler::DartsLuf,
    ] {
        let mut sched = named.build();
        let report = run(&ts, &spec, sched.as_mut()).expect("run failed");
        println!(
            "{:<24} {:>10.0} {:>14.0} {:>8} {:>10}",
            report.scheduler,
            report.gflops(),
            report.transfers_mb(),
            report.total_loads,
            report.max_load()
        );
    }

    // Lower bound on transfers: every consumed data item crosses the bus
    // at least once.
    println!(
        "\ncompulsory transfers: {:.0} MB",
        memsched::model::bounds::min_total_load_bytes(&ts) as f64 / 1e6
    );
}
