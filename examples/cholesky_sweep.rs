//! Cholesky scenario (Figure 11): heterogeneous kernels (POTRF, TRSM,
//! SYRK, GEMM), up to three inputs per task, large task counts — the
//! workload that motivates the DARTS `OPTI` and `3inputs` variants.
//!
//! ```text
//! cargo run --release --example cholesky_sweep
//! ```

use memsched::prelude::*;
use memsched::workloads::{cholesky_task_count, cholesky_with_kinds};
use std::time::Instant;

fn main() {
    let spec = PlatformSpec::v100(4);
    println!(
        "{:>6} {:>9} {:>9}   {:>28} {:>28}",
        "tiles", "tasks", "WS(MB)", "DARTS+LUF", "DARTS+LUF+OPTI-3inputs"
    );
    for n in [8usize, 16, 24, 32] {
        let (ts, kinds) = cholesky_with_kinds(n);
        assert_eq!(kinds.len(), cholesky_task_count(n));
        let mut line = format!(
            "{:>6} {:>9} {:>9.0}  ",
            n,
            ts.num_tasks(),
            ts.working_set_bytes() as f64 / 1e6
        );
        for named in [NamedScheduler::DartsLuf, NamedScheduler::DartsLufOpti3] {
            let mut sched = named.build();
            let wall = Instant::now();
            let r = run(&ts, &spec, sched.as_mut()).expect("run failed");
            let wall_ms = wall.elapsed().as_millis();
            line.push_str(&format!(
                " {:>12.0}GF {:>6}ms wall",
                r.gflops(),
                wall_ms
            ));
        }
        println!("{line}");
    }
    println!(
        "\nOPTI caps the per-refill candidate scan, keeping the scheduler \
         cheap on huge task sets at a small cost in schedule quality \
         (Figure 11 of the paper)."
    );
}
