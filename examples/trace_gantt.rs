//! Trace analysis: run two schedulers under memory pressure, print their
//! ASCII Gantt charts and overlap statistics — a visual rendition of the
//! paper's §V-C observation that DARTS+LUF wins by *overlapping* transfers
//! with computation even when it moves more bytes than DMDAR.
//!
//! ```text
//! cargo run --release --example trace_gantt
//! ```

use memsched::platform::{analysis, run_with_config, RunConfig};
use memsched::prelude::*;
use memsched::workloads::constants::GEMM2D_DATA_BYTES;

fn main() {
    let ts = memsched::workloads::gemm_2d(14);
    let spec = PlatformSpec::v100(2).with_memory(6 * GEMM2D_DATA_BYTES);
    let cfg = RunConfig {
        trace: TraceMode::Full,
        ..Default::default()
    };

    for named in [NamedScheduler::Eager, NamedScheduler::DartsLuf] {
        let mut sched = named.build();
        let (report, trace) = run_with_config(&ts, &spec, sched.as_mut(), &cfg).unwrap();
        let a = analysis::analyze_checked(&report, &trace);
        println!(
            "== {} — {:.0} GFlop/s, {:.0} MB moved ==",
            report.scheduler,
            report.gflops(),
            report.transfers_mb()
        );
        print!("{}", analysis::render_gantt(&trace, spec.num_gpus, 100));
        println!(
            "bus utilization {:.0}%  |  transfer/compute overlap {:.0}%  |  GPU occupancy {:.0}%\n",
            100.0 * a.bus_utilization(),
            100.0 * a.overlap_ratio(),
            100.0 * a.mean_gpu_occupancy()
        );
    }
}
